package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"prima/internal/storage/device"
)

// collectApplier records every redo/undo call for inspection.
type collectApplier struct {
	redo []Record
	undo []Record
}

func (c *collectApplier) Redo(r *Record) error {
	c.redo = append(c.redo, *r.clone())
	return nil
}

func (c *collectApplier) Undo(r *Record) error {
	c.undo = append(c.undo, *r.clone())
	return nil
}

func openLog(t *testing.T, files *device.Manager, opts Options) *Log {
	t.Helper()
	l, err := Open(files, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(nil); err != nil {
		t.Fatal(err)
	}
	// Persist the recovery-bumped generation, like the owning system's
	// post-recovery checkpoint does — without it, records appended now are
	// (by design) invisible to the next incarnation.
	if err := l.EndCheckpoint(l.BeginCheckpoint()); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendFlushReopenScan(t *testing.T) {
	files := device.NewManager(t.TempDir())
	l := openLog(t, files, Options{SegmentBlocks: 4})
	var want []Record
	for i := 0; i < 20; i++ {
		r := Record{
			Kind:     Kind(i%3) + RecInsert,
			TxID:     uint64(i % 4),
			Addr:     uint64(1000 + i),
			TypeName: "item",
			Undo:     []byte(fmt.Sprintf("undo-%d", i)),
			Redo:     []byte(fmt.Sprintf("redo-%d-with-some-padding", i)),
		}
		if _, err := l.Append(&r); err != nil {
			t.Fatal(err)
		}
		want = append(want, *r.clone())
	}
	if err := l.Commit(7); err != nil {
		t.Fatal(err)
	}
	if l.Durable() != l.WriteLSN() {
		t.Fatalf("durable %d != write %d after commit", l.Durable(), l.WriteLSN())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(files, Options{SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ap := &collectApplier{}
	st, err := l2.Recover(ap)
	if err != nil {
		t.Fatal(err)
	}
	// The open-time checkpoint record + 20 ops + 1 commit; every op redone.
	if st.Records != 22 {
		t.Fatalf("records = %d, want 22", st.Records)
	}
	if int(st.Redone) != len(want) {
		t.Fatalf("redone = %d, want %d", st.Redone, len(want))
	}
	for i, r := range ap.redo {
		w := want[i]
		if r.Kind != w.Kind || r.TxID != w.TxID || r.Addr != w.Addr ||
			r.TypeName != w.TypeName || string(r.Undo) != string(w.Undo) || string(r.Redo) != string(w.Redo) {
			t.Fatalf("redo[%d] = %+v, want %+v", i, r, w)
		}
	}
	// txids 1,2,3 appear without commit or abort; txid 0 is autocommit.
	if st.Losers != 3 {
		t.Fatalf("losers = %d, want 3", st.Losers)
	}
	// Loser ops are undone in reverse global order.
	for i := 1; i < len(ap.undo); i++ {
		if ap.undo[i-1].Addr < ap.undo[i].Addr {
			t.Fatalf("undo out of reverse order: %d before %d", ap.undo[i-1].Addr, ap.undo[i].Addr)
		}
	}
}

func TestAppendRequiresRecover(t *testing.T) {
	files := device.NewManager("")
	l, err := Open(files, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(&Record{Kind: RecInsert}); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("append before recover = %v, want ErrNotRecovered", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	files := device.NewManager(dir)
	l := openLog(t, files, Options{SegmentBlocks: 4})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(&Record{Kind: RecInsert, TxID: 1, Addr: uint64(i), Redo: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a torn flush: corrupt a byte in the middle of the last
	// record's frame directly on the device.
	d, err := files.Open(segName(0), device.B8K)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, device.B8K)
	if err := d.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	// Find the last nonzero byte and flip it (inside the commit record).
	last := -1
	for i, b := range buf {
		if b != 0 {
			last = i
		}
	}
	buf[last] ^= 0xff
	if err := d.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(files, Options{SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ap := &collectApplier{}
	st, err := l2.Recover(ap)
	if err != nil {
		t.Fatal(err)
	}
	// The torn commit record is cut off: the open-time checkpoint record and
	// 5 ops survive, tx 1 is a loser.
	if st.Records != 6 {
		t.Fatalf("records = %d, want 6", st.Records)
	}
	if st.Losers != 1 || st.Winners != 0 {
		t.Fatalf("losers/winners = %d/%d, want 1/0", st.Losers, st.Winners)
	}
	if len(ap.undo) != 5 {
		t.Fatalf("undone = %d, want 5", len(ap.undo))
	}
	// The log stays appendable after truncation.
	if _, err := l2.Append(&Record{Kind: RecInsert, TxID: 2, Addr: 99, Redo: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Commit(2); err != nil {
		t.Fatal(err)
	}
}

func TestStaleRecordsBeyondEndRejected(t *testing.T) {
	dir := t.TempDir()
	files := device.NewManager(dir)
	l := openLog(t, files, Options{SegmentBlocks: 4})
	// First life: a committed tx then an uncommitted one.
	for i := 0; i < 3; i++ {
		if _, err := l.Append(&Record{Kind: RecInsert, TxID: 1, Addr: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(&Record{Kind: RecUpdate, TxID: 2, Addr: uint64(10 + i), Undo: []byte("u"), Redo: []byte("r")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.FlushTo(l.WriteLSN()); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Second life: recover (gen bump), append less than the stale tail held,
	// then crash again without the post-recovery checkpoint having happened.
	l2, err := Open(files, Options{SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Recover(&collectApplier{}); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(&Record{Kind: RecDelete, TxID: 3, Addr: 77, Undo: []byte("old")}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Commit(3); err != nil {
		t.Fatal(err)
	}
	// Make the new generation durable like the owner's post-recovery
	// checkpoint would.
	if err := l2.EndCheckpoint(l2.BeginCheckpoint()); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	// Third life: the old tx-2 records physically follow the new tx-3
	// records but are from the previous generation — they must not resurface.
	l3, err := Open(files, Options{SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	ap := &collectApplier{}
	if _, err := l3.Recover(ap); err != nil {
		t.Fatal(err)
	}
	for _, r := range ap.redo {
		if r.TxID == 2 {
			t.Fatalf("stale record from previous generation replayed: %+v", r)
		}
	}
}

func TestGroupCommitBatching(t *testing.T) {
	files := device.NewManager(t.TempDir())
	l := openLog(t, files, Options{})
	const committers = 8
	const each = 10
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				txid := uint64(1 + c*each + i)
				if _, err := l.Append(&Record{Kind: RecInsert, TxID: txid, Addr: txid}); err != nil {
					t.Error(err)
					return
				}
				if err := l.Commit(txid); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := l.Stats()
	if st.Commits != committers*each {
		t.Fatalf("commits = %d, want %d", st.Commits, committers*each)
	}
	if st.Batches == 0 || st.Batches > st.Commits {
		t.Fatalf("batches = %d out of range (commits %d)", st.Batches, st.Commits)
	}
	if st.Syncs < st.Batches {
		t.Fatalf("syncs %d < batches %d", st.Syncs, st.Batches)
	}
	t.Logf("commits=%d batches=%d syncs=%d", st.Commits, st.Batches, st.Syncs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	files := device.NewManager(dir)
	// Tiny segments so the log spans several.
	l := openLog(t, files, Options{SegmentBlocks: 1})
	payload := make([]byte, 1024)
	var committed []uint64
	for i := 0; i < 40; i++ {
		txid := uint64(i + 1)
		if _, err := l.Append(&Record{Kind: RecInsert, TxID: txid, Addr: txid, Redo: payload}); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(txid); err != nil {
			t.Fatal(err)
		}
		committed = append(committed, txid)
	}
	// No active transactions: the checkpoint truncates everything before it.
	if err := l.EndCheckpoint(l.BeginCheckpoint()); err != nil {
		t.Fatal(err)
	}
	names := files.Names()
	segCount := 0
	for _, n := range names {
		if len(n) > 4 && n[:4] == "wal_" && n != "wal.meta" {
			segCount++
		}
	}
	if segCount > 2 {
		t.Fatalf("%d log segments survive a full checkpoint: %v", segCount, names)
	}
	// Records after the checkpoint still recover; records before don't replay.
	if _, err := l.Append(&Record{Kind: RecUpdate, TxID: 100, Addr: 100, Undo: payload[:8], Redo: payload[:8]}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(100); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(files, Options{SegmentBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ap := &collectApplier{}
	if _, err := l2.Recover(ap); err != nil {
		t.Fatal(err)
	}
	for _, r := range ap.redo {
		for _, c := range committed {
			if r.TxID == c {
				t.Fatalf("pre-checkpoint record %d replayed after truncation", c)
			}
		}
	}
	found := false
	for _, r := range ap.redo {
		if r.TxID == 100 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-checkpoint record not replayed")
	}
}

func TestCheckpointKeepsActiveTransactions(t *testing.T) {
	files := device.NewManager(t.TempDir())
	l := openLog(t, files, Options{SegmentBlocks: 1})
	// tx 1 stays active across the checkpoint.
	if _, err := l.Append(&Record{Kind: RecInsert, TxID: 1, Addr: 1, Redo: []byte("keep")}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := 0; i < 20; i++ {
		txid := uint64(100 + i)
		if _, err := l.Append(&Record{Kind: RecInsert, TxID: txid, Addr: txid, Redo: payload}); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(txid); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.EndCheckpoint(l.BeginCheckpoint()); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(files, Options{SegmentBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ap := &collectApplier{}
	if _, err := l2.Recover(ap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ap.redo {
		if r.TxID == 1 && string(r.Redo) == "keep" {
			found = true
		}
	}
	if !found {
		t.Fatal("active transaction's record lost by checkpoint truncation")
	}
	// It never committed, so it must be undone.
	if len(ap.undo) == 0 || ap.undo[0].TxID != 1 {
		t.Fatalf("active transaction not undone: %+v", ap.undo)
	}
}

// A transaction that begins AND commits while a checkpoint is in progress is
// in neither active table the checkpoint sees — but its page writes may have
// landed after the checkpoint's page flush. The replay start must not
// advance past its records: after a crash before writeback, redo must
// reproduce them.
func TestCheckpointKeepsCommitDuringCheckpoint(t *testing.T) {
	files := device.NewManager(t.TempDir())
	l := openLog(t, files, Options{SegmentBlocks: 1})
	// Fill a few segments with committed work the checkpoint may truncate.
	payload := make([]byte, 1024)
	for i := 0; i < 20; i++ {
		txid := uint64(100 + i)
		if _, err := l.Append(&Record{Kind: RecInsert, TxID: txid, Addr: txid, Redo: payload}); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(txid); err != nil {
			t.Fatal(err)
		}
	}
	tok := l.BeginCheckpoint()
	// tx 7 begins and durably commits between the checkpoint's begin (page
	// flush happens here in the owner) and its end.
	if _, err := l.Append(&Record{Kind: RecInsert, TxID: 7, Addr: 7, Redo: []byte("during-cp")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(7); err != nil {
		t.Fatal(err)
	}
	if err := l.EndCheckpoint(tok); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the log without further flushing and recover a new one.
	l.Close()
	l2, err := Open(files, Options{SegmentBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	ap := &collectApplier{}
	st, err := l2.Recover(ap)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ap.redo {
		if r.TxID == 7 && string(r.Redo) == "during-cp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("acknowledged commit during checkpoint lost by truncation (redone %d)", st.Redone)
	}
	for _, r := range ap.undo {
		if r.TxID == 7 {
			t.Fatal("committed transaction 7 undone")
		}
	}
}

// An autocommit (TxID 0) mutation in flight when a checkpoint begins is
// never in the active-transaction table; its OpBegin span must pin the
// replay start instead.
func TestCheckpointKeepsInflightAutocommitOp(t *testing.T) {
	files := device.NewManager(t.TempDir())
	l := openLog(t, files, Options{SegmentBlocks: 1})
	release := l.OpBegin()
	lsn, err := l.Append(&Record{Kind: RecInsert, TxID: 0, Addr: 42, Redo: []byte("autocommit")})
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint runs while the op's page writes are still in flight.
	tok := l.BeginCheckpoint()
	if err := l.EndCheckpoint(tok); err != nil {
		t.Fatal(err)
	}
	release()
	if err := l.FlushTo(l.WriteLSN()); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(files, Options{SegmentBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.start > lsn {
		t.Fatalf("replay start %d advanced past in-flight op record %d", l2.start, lsn)
	}
	ap := &collectApplier{}
	if _, err := l2.Recover(ap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ap.redo {
		if r.Addr == 42 && string(r.Redo) == "autocommit" {
			found = true
		}
	}
	if !found {
		t.Fatal("in-flight autocommit record lost by checkpoint truncation")
	}
}

// A released op span no longer pins the replay start.
func TestOpSpanReleaseUnpins(t *testing.T) {
	files := device.NewManager(t.TempDir())
	l := openLog(t, files, Options{SegmentBlocks: 1})
	release := l.OpBegin()
	if _, err := l.Append(&Record{Kind: RecInsert, TxID: 0, Addr: 1, Redo: make([]byte, 1024)}); err != nil {
		t.Fatal(err)
	}
	release()
	before := l.WriteLSN()
	if err := l.EndCheckpoint(l.BeginCheckpoint()); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	start := l.start
	l.mu.Unlock()
	if start < before {
		t.Fatalf("released op span still pins replay start (%d < %d)", start, before)
	}
}

// FlushTo of an already-durable position succeeds on a closed log: the pool
// may write back pages whose records are long durable while the system is
// shutting down in degraded order.
func TestFlushToAfterCloseSatisfiedGate(t *testing.T) {
	files := device.NewManager(t.TempDir())
	l := openLog(t, files, Options{})
	if _, err := l.Append(&Record{Kind: RecInsert, TxID: 1, Addr: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	durable := l.Durable()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushTo(durable); err != nil {
		t.Fatalf("FlushTo(durable) on closed log = %v, want nil", err)
	}
	if err := l.FlushTo(durable + 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("FlushTo past durable on closed log = %v, want ErrClosed", err)
	}
}

// A segment file leaked by a failed removal in a previous incarnation (so it
// is never reopened — recovery scans from the replay start) is reclaimed by
// the floor sweep of a later checkpoint.
func TestRecycleSweepsLeakedSegments(t *testing.T) {
	dir := t.TempDir()
	files := device.NewManager(dir)
	l := openLog(t, files, Options{SegmentBlocks: 1})
	payload := make([]byte, 1024)
	for i := 0; i < 40; i++ {
		txid := uint64(i + 1)
		if _, err := l.Append(&Record{Kind: RecInsert, TxID: txid, Addr: txid, Redo: payload}); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(txid); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.EndCheckpoint(l.BeginCheckpoint()); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	floor := l.floor
	l.mu.Unlock()
	if floor == 0 {
		t.Fatal("checkpoint did not advance the recycle floor")
	}
	l.Close()

	// Simulate the leak: resurrect a segment file behind the floor, as a
	// failed Remove before a crash would leave it, and rewind the durable
	// floor to cover it (the floor never advances past a failed removal).
	leaked := filepath.Join(dir, segName(0))
	if err := os.WriteFile(leaked, make([]byte, blockSize), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(files, Options{SegmentBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	l2.mu.Lock()
	l2.floor = 0
	l2.mu.Unlock()
	if _, err := l2.Recover(nil); err != nil {
		t.Fatal(err)
	}
	if err := l2.EndCheckpoint(l2.BeginCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(leaked); !os.IsNotExist(err) {
		t.Fatalf("leaked segment %s not reclaimed by floor sweep (err=%v)", leaked, err)
	}
}

func TestRecordTooLarge(t *testing.T) {
	files := device.NewManager("")
	l := openLog(t, files, Options{SegmentBlocks: 1})
	if _, err := l.Append(&Record{Kind: RecInsert, Redo: make([]byte, 9000)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append = %v, want ErrTooLarge", err)
	}
	l.Close()
}

func TestRecordCodecRoundtrip(t *testing.T) {
	in := Record{
		Kind: RecUpdate, TxID: 42, Addr: 7, TypeName: "widget",
		Undo: []byte{1, 2, 3}, Redo: []byte{9, 8},
	}
	buf := appendPayload(nil, &in)
	out, err := decodePayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.TxID != in.TxID || out.Addr != in.Addr || out.TypeName != in.TypeName {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
	}
	if string(out.Undo) != string(in.Undo) || string(out.Redo) != string(in.Redo) {
		t.Fatalf("image mismatch: %+v vs %+v", out, in)
	}
	// Truncated payloads must error, not panic.
	for i := 0; i < len(buf); i++ {
		if _, err := decodePayload(buf[:i]); err == nil {
			t.Fatalf("truncated payload at %d decoded without error", i)
		}
	}

	cp := Record{Kind: RecCheckpoint, Active: map[uint64]uint64{3: 100, 9: 250}}
	cbuf := appendPayload(nil, &cp)
	cout, err := decodePayload(cbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cout.Active) != 2 || cout.Active[3] != 100 || cout.Active[9] != 250 {
		t.Fatalf("active mismatch: %v", cout.Active)
	}
	for i := 1; i < len(cbuf); i++ {
		if _, err := decodePayload(cbuf[:i]); err == nil {
			t.Fatalf("truncated checkpoint payload at %d decoded without error", i)
		}
	}
}
