// Package wal implements a write-ahead log for the storage system: an
// append-only, CRC-framed record stream over fixed-capacity segment files
// handed out by the file manager (device.Manager). The log carries logical
// redo/undo records at atom granularity — pre- and post-images encoded by
// the access system's atom codec — plus transaction commit/abort marks and
// fuzzy-checkpoint records.
//
// The paper defers crash recovery to future work (§4: "concepts for ...
// recovery in such a workstation environment have to be refined"); this
// package supplies the classical solution PRIMA's architecture anticipates:
// write-ahead logging with group commit, checkpoint-bounded replay and an
// ARIES-style redo-all/undo-losers pass (repeating history with idempotent,
// state-tested logical operators instead of page LSN tests).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind tags log records.
type Kind uint8

const (
	// RecInsert carries the post-image of a created atom (redo); undo is
	// implied (delete the address).
	RecInsert Kind = iota + 1
	// RecUpdate carries both pre-image (undo) and post-image (redo).
	RecUpdate
	// RecDelete carries the pre-image of a removed atom (undo); redo is
	// implied (delete the address).
	RecDelete
	// RecCommit marks a top-level transaction as committed. Once this record
	// is on stable storage the transaction is a winner.
	RecCommit
	// RecAbort marks a top-level transaction as rolled back: its forward
	// records plus its compensation records replay to a no-op.
	RecAbort
	// RecCheckpoint carries the active-transaction table captured by a fuzzy
	// checkpoint (txid -> first LSN).
	RecCheckpoint
)

func (k Kind) String() string {
	switch k {
	case RecInsert:
		return "insert"
	case RecUpdate:
		return "update"
	case RecDelete:
		return "delete"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one log record. Op records (insert/update/delete) carry the
// atom's address, type name and encoded images; commit/abort carry only the
// transaction id; checkpoint records carry the active-transaction table.
//
// TxID 0 is the autocommit scope: its records are always replayed and never
// rolled back.
type Record struct {
	Kind     Kind
	TxID     uint64
	Addr     uint64
	TypeName string
	Undo     []byte // encoded pre-image (atom codec), nil for inserts
	Redo     []byte // encoded post-image, nil for deletes
	Active   map[uint64]uint64
}

// ErrCorrupt reports a record whose checksum passed but whose payload does
// not parse — real corruption, as opposed to the expected torn tail.
var ErrCorrupt = errors.New("wal: corrupt record payload")

// castagnoli is the CRC-32C table used for record framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recHeaderSize is the per-record frame: payload length + CRC-32C.
const recHeaderSize = 8

// padMagic in the CRC field of a zero-length header marks "rest of segment
// is padding, continue in the next segment". A zero-length header with any
// other CRC value marks the end of the valid log.
const padMagic = 0x50414421 // "PAD!"

// recCRC computes the frame checksum. The generation and the record's own
// LSN are mixed in, so a stale record from an earlier log incarnation (or a
// record block left behind at a different stream position) can never pass
// validation.
func recCRC(gen, lsn uint64, payload []byte) uint32 {
	var pre [16]byte
	binary.LittleEndian.PutUint64(pre[0:], gen)
	binary.LittleEndian.PutUint64(pre[8:], lsn)
	c := crc32.Update(0, castagnoli, pre[:])
	return crc32.Update(c, castagnoli, payload)
}

// appendPayload encodes r's payload (everything behind the frame header)
// onto b.
func appendPayload(b []byte, r *Record) []byte {
	b = append(b, byte(r.Kind))
	b = binary.LittleEndian.AppendUint64(b, r.TxID)
	switch r.Kind {
	case RecInsert, RecUpdate, RecDelete:
		b = binary.LittleEndian.AppendUint64(b, r.Addr)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(r.TypeName)))
		b = append(b, r.TypeName...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Undo)))
		b = append(b, r.Undo...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Redo)))
		b = append(b, r.Redo...)
	case RecCheckpoint:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Active)))
		for txid, first := range r.Active {
			b = binary.LittleEndian.AppendUint64(b, txid)
			b = binary.LittleEndian.AppendUint64(b, first)
		}
	}
	return b
}

// decodePayload parses one record payload. The returned record's byte
// slices alias data; callers that retain records across buffer reuse must
// copy.
func decodePayload(data []byte) (*Record, error) {
	if len(data) < 9 {
		return nil, fmt.Errorf("%w: %d payload bytes", ErrCorrupt, len(data))
	}
	r := &Record{Kind: Kind(data[0]), TxID: binary.LittleEndian.Uint64(data[1:9])}
	rest := data[9:]
	switch r.Kind {
	case RecCommit, RecAbort:
		return r, nil
	case RecInsert, RecUpdate, RecDelete:
		if len(rest) < 10 {
			return nil, fmt.Errorf("%w: truncated op record", ErrCorrupt)
		}
		r.Addr = binary.LittleEndian.Uint64(rest[:8])
		nameLen := int(binary.LittleEndian.Uint16(rest[8:10]))
		rest = rest[10:]
		if len(rest) < nameLen+4 {
			return nil, fmt.Errorf("%w: truncated type name", ErrCorrupt)
		}
		r.TypeName = string(rest[:nameLen])
		rest = rest[nameLen:]
		undoLen := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if len(rest) < undoLen+4 {
			return nil, fmt.Errorf("%w: truncated undo image", ErrCorrupt)
		}
		if undoLen > 0 {
			r.Undo = rest[:undoLen]
		}
		rest = rest[undoLen:]
		redoLen := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if len(rest) < redoLen {
			return nil, fmt.Errorf("%w: truncated redo image", ErrCorrupt)
		}
		if redoLen > 0 {
			r.Redo = rest[:redoLen]
		}
		return r, nil
	case RecCheckpoint:
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated checkpoint", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if len(rest) < n*16 {
			return nil, fmt.Errorf("%w: truncated active table", ErrCorrupt)
		}
		r.Active = make(map[uint64]uint64, n)
		for i := 0; i < n; i++ {
			txid := binary.LittleEndian.Uint64(rest[i*16:])
			first := binary.LittleEndian.Uint64(rest[i*16+8:])
			r.Active[txid] = first
		}
		return r, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, data[0])
	}
}

// clone deep-copies a record so it can outlive the scan buffer it was
// decoded from.
func (r *Record) clone() *Record {
	c := *r
	if r.Undo != nil {
		c.Undo = append([]byte(nil), r.Undo...)
	}
	if r.Redo != nil {
		c.Redo = append([]byte(nil), r.Redo...)
	}
	return &c
}
