package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"prima/internal/obs"
	"prima/internal/storage/device"
)

// Log framing constants.
const (
	// blockSize is the device block size of log segments: always the largest
	// file-manager block, independent of the database page size.
	blockSize = device.B8K
	// DefaultSegmentBlocks sizes a log segment (512 x 8K = 4 MiB).
	DefaultSegmentBlocks = 512
	// DefaultGroupCommitBatch caps how many concurrent commit requests one
	// fsync absorbs before the flusher stops collecting.
	DefaultGroupCommitBatch = 64
	// DefaultGroupCommitMaxWait bounds how long the flusher holds the first
	// committer while collecting a batch.
	DefaultGroupCommitMaxWait = 200 * time.Microsecond
	// DefaultCheckpointBytes is the log-growth threshold that nudges the
	// owner to take a checkpoint (4 MiB).
	DefaultCheckpointBytes = 4 << 20

	metaName  = "wal.meta"
	metaMagic = 0x314c5741414d4952 // "PRIMAAWL1" truncated, little-endian
)

// Errors returned by the log.
var (
	ErrClosed       = errors.New("wal: log closed")
	ErrNotRecovered = errors.New("wal: log not positioned (Recover must run first)")
	ErrTooLarge     = errors.New("wal: record exceeds segment capacity")
)

// Options tunes a Log.
type Options struct {
	// SegmentBlocks is the fixed capacity of one log segment in 8K blocks
	// (default DefaultSegmentBlocks).
	SegmentBlocks int
	// GroupCommitMaxWait bounds how long the background flusher may hold the
	// first committer of a batch while waiting for companions (default
	// DefaultGroupCommitMaxWait; negative disables waiting — the flusher
	// still absorbs whatever is already queued).
	GroupCommitMaxWait time.Duration
	// GroupCommitBatch is the batch size that triggers an immediate flush
	// (default DefaultGroupCommitBatch).
	GroupCommitBatch int
	// CheckpointBytes is the number of appended log bytes after which the
	// log nudges its owner (via Nudge) to take a checkpoint (default
	// DefaultCheckpointBytes; negative disables nudging).
	CheckpointBytes int64
	// AppendNs, FsyncNs and FlushNs, when set, observe the latency of each
	// record append (including lock wait), each device fsync, and each
	// group-commit flush round, in nanoseconds. Passed through Options —
	// rather than a setter — so they are in place before the flusher
	// goroutine starts.
	AppendNs *obs.Histogram
	FsyncNs  *obs.Histogram
	FlushNs  *obs.Histogram
}

func (o *Options) fill() {
	if o.SegmentBlocks <= 0 {
		o.SegmentBlocks = DefaultSegmentBlocks
	}
	if o.GroupCommitMaxWait == 0 {
		o.GroupCommitMaxWait = DefaultGroupCommitMaxWait
	}
	if o.GroupCommitBatch <= 0 {
		o.GroupCommitBatch = DefaultGroupCommitBatch
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = DefaultCheckpointBytes
	}
}

// Stats counts log activity.
type Stats struct {
	// Appends is the number of records appended.
	Appends uint64
	// Bytes is the number of log bytes appended (frames plus padding).
	Bytes uint64
	// Syncs is the number of device Sync calls issued by the log (the fsync
	// count group commit amortizes).
	Syncs uint64
	// Commits is the number of durable top-level commits.
	Commits uint64
	// Batches is the number of group-commit flush rounds; Commits/Batches is
	// the amortization factor.
	Batches uint64
	// Checkpoints is the number of completed checkpoints.
	Checkpoints uint64
	// Recoveries counts Recover passes that found records to replay.
	Recoveries uint64
}

// commitReq is one transaction waiting for its commit record to be durable.
type commitReq struct {
	done chan error
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use once Recover has positioned the log.
type Log struct {
	files *device.Manager
	opts  Options

	segBytes uint64

	mu        sync.Mutex
	ready     bool
	closed    bool
	gen       uint64            // log incarnation (mixed into record CRCs)
	start     uint64            // replay starts here (meta-recorded)
	floor     uint64            // lowest segment index that may still exist (meta-recorded)
	appendEnd uint64            // next append offset
	flushed   uint64            // durable prefix end
	buf       []byte            // unflushed bytes from bufBase (block-aligned)
	bufBase   uint64            // stream offset of buf[0]
	active    map[uint64]uint64 // txid -> first LSN, for checkpointing
	inflight  map[*opSpan]struct{}
	segs      map[uint64]device.Device
	meta      device.Device
	scratch   []byte // payload encode buffer
	blockBuf  []byte // one-block write staging buffer
	sinceCp   int64  // bytes appended since the last completed checkpoint
	stats     Stats

	commitCh    chan commitReq
	stopCh      chan struct{}
	flusherDone chan struct{}
	nudgeCh     chan struct{}
	stopOnce    sync.Once
}

// Open attaches a log to the file manager. The returned log is not yet
// positioned: the owner must call Recover (with an applier; a trivial one on
// a fresh database) before appending, and should complete a checkpoint
// before accepting new work so the recovered state and the bumped generation
// become durable.
func Open(files *device.Manager, opts Options) (*Log, error) {
	opts.fill()
	l := &Log{
		files:       files,
		opts:        opts,
		segBytes:    uint64(opts.SegmentBlocks) * blockSize,
		active:      make(map[uint64]uint64),
		inflight:    make(map[*opSpan]struct{}),
		segs:        make(map[uint64]device.Device),
		blockBuf:    make([]byte, blockSize),
		gen:         1,
		commitCh:    make(chan commitReq, 4*opts.GroupCommitBatch),
		stopCh:      make(chan struct{}),
		flusherDone: make(chan struct{}),
		nudgeCh:     make(chan struct{}, 1),
	}
	meta, err := files.Open(metaName, device.B512)
	if err != nil {
		return nil, fmt.Errorf("wal: open meta: %w", err)
	}
	l.meta = meta
	if err := l.readMeta(); err != nil {
		return nil, err
	}
	go l.flusher()
	return l, nil
}

// readMeta loads {generation, start, floor} from the meta device. A missing
// or invalid meta block means a fresh log (generation 1, start 0) — which is
// also what a crash before the very first checkpoint resolves to.
func (l *Log) readMeta() error {
	if l.meta.Blocks() == 0 {
		return nil
	}
	buf := make([]byte, device.B512)
	if err := l.meta.ReadBlock(0, buf); err != nil {
		return fmt.Errorf("wal: read meta: %w", err)
	}
	if binary.LittleEndian.Uint64(buf[0:]) != metaMagic {
		return nil
	}
	gen := binary.LittleEndian.Uint64(buf[8:])
	start := binary.LittleEndian.Uint64(buf[16:])
	floor := binary.LittleEndian.Uint64(buf[24:])
	sum := binary.LittleEndian.Uint32(buf[32:])
	if crcBytes(buf[:32]) != sum {
		return nil
	}
	l.gen = gen
	l.start = start
	l.floor = floor
	return nil
}

// writeMetaLocked durably records {generation, start, floor}. This is the
// commit point of a checkpoint: once the meta block is synced, replay begins
// at the new start.
func (l *Log) writeMetaLocked() error {
	buf := make([]byte, device.B512)
	binary.LittleEndian.PutUint64(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], l.gen)
	binary.LittleEndian.PutUint64(buf[16:], l.start)
	binary.LittleEndian.PutUint64(buf[24:], l.floor)
	binary.LittleEndian.PutUint32(buf[32:], crcBytes(buf[:32]))
	if l.meta.Blocks() == 0 {
		if _, err := l.meta.Extend(1); err != nil {
			return fmt.Errorf("wal: extend meta: %w", err)
		}
	}
	if err := l.meta.WriteBlock(0, buf); err != nil {
		return fmt.Errorf("wal: write meta: %w", err)
	}
	if err := l.meta.Sync(); err != nil {
		return fmt.Errorf("wal: sync meta: %w", err)
	}
	l.stats.Syncs++
	return nil
}

func crcBytes(b []byte) uint32 {
	return recCRC(0, 0, b)
}

// segName names the n-th log segment file.
func segName(idx uint64) string { return fmt.Sprintf("wal_%06d.log", idx) }

// segment returns (opening on demand) the device of segment idx.
func (l *Log) segment(idx uint64) (device.Device, error) {
	if d, ok := l.segs[idx]; ok {
		return d, nil
	}
	d, err := l.files.Open(segName(idx), blockSize)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %d: %w", idx, err)
	}
	l.segs[idx] = d
	return d, nil
}

// Append adds a record to the log buffer and returns its LSN (the record's
// stream offset). The record is not durable until the log is flushed past
// it — by Commit, FlushTo, or a checkpoint.
func (l *Log) Append(r *Record) (uint64, error) {
	defer l.opts.AppendNs.ObserveSince(time.Now())
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(r)
}

func (l *Log) appendLocked(r *Record) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if !l.ready {
		return 0, ErrNotRecovered
	}
	l.scratch = appendPayload(l.scratch[:0], r)
	payload := l.scratch
	need := uint64(recHeaderSize + len(payload))
	if need > l.segBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, need)
	}
	if rem := l.segBytes - l.appendEnd%l.segBytes; need > rem {
		l.padLocked(rem)
	}
	lsn := l.appendEnd
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], recCRC(l.gen, lsn, payload))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.appendEnd += need
	l.sinceCp += int64(need)
	l.stats.Appends++
	l.stats.Bytes += need

	if r.TxID != 0 {
		switch r.Kind {
		case RecCommit, RecAbort:
			delete(l.active, r.TxID)
		case RecInsert, RecUpdate, RecDelete:
			if _, ok := l.active[r.TxID]; !ok {
				l.active[r.TxID] = lsn
			}
		}
	}
	if l.opts.CheckpointBytes > 0 && l.sinceCp >= l.opts.CheckpointBytes {
		select {
		case l.nudgeCh <- struct{}{}:
		default:
		}
	}
	return lsn, nil
}

// padLocked fills the remainder of the current segment: an 8-byte jump
// marker (when it fits) followed by zeros, advancing the append position to
// the next segment boundary.
func (l *Log) padLocked(rem uint64) {
	l.stats.Bytes += rem
	if rem >= recHeaderSize {
		var hdr [recHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[4:], padMagic)
		l.buf = append(l.buf, hdr[:]...)
		rem -= recHeaderSize
		l.appendEnd += recHeaderSize
	}
	for rem > 0 {
		n := rem
		if n > blockSize {
			n = blockSize
		}
		l.buf = append(l.buf, make([]byte, n)...)
		l.appendEnd += n
		rem -= n
	}
}

// flushLocked writes every buffered byte to its segment blocks and syncs the
// touched devices; on return the whole log up to appendEnd is durable.
func (l *Log) flushLocked() error {
	end := l.appendEnd
	if l.flushed >= end {
		return nil
	}
	off := l.bufBase
	var toSync []device.Device
	for off < end {
		segIdx := off / l.segBytes
		segStart := segIdx * l.segBytes
		upTo := segStart + l.segBytes
		if upTo > end {
			upTo = end
		}
		d, err := l.segment(segIdx)
		if err != nil {
			return err
		}
		firstBlk := int((off - segStart) / blockSize)
		lastBlk := int((upTo - segStart + blockSize - 1) / blockSize) // exclusive
		if have := d.Blocks(); have < lastBlk {
			if _, err := d.Extend(lastBlk - have); err != nil {
				return fmt.Errorf("wal: extend segment %d: %w", segIdx, err)
			}
		}
		for blk := firstBlk; blk < lastBlk; blk++ {
			bo := segStart + uint64(blk)*blockSize // stream offset of block start
			n := copy(l.blockBuf, l.buf[bo-l.bufBase:end-l.bufBase])
			for i := n; i < blockSize; i++ {
				l.blockBuf[i] = 0
			}
			if err := d.WriteBlock(blk, l.blockBuf); err != nil {
				return fmt.Errorf("wal: write segment %d block %d: %w", segIdx, blk, err)
			}
		}
		toSync = append(toSync, d)
		off = upTo
	}
	for _, d := range toSync {
		syncStart := time.Now()
		if err := d.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.opts.FsyncNs.ObserveSince(syncStart)
		l.stats.Syncs++
	}
	l.flushed = end
	// Keep only the partial tail block: it will be rewritten (zero-padded
	// again) when further appends land in it.
	tailStart := end - end%blockSize
	keep := end - tailStart
	copy(l.buf, l.buf[tailStart-l.bufBase:end-l.bufBase])
	l.buf = l.buf[:keep]
	l.bufBase = tailStart
	return nil
}

// FlushTo makes the log durable up to (at least) lsn. It is the buffer
// pool's WAL-before-page gate: a dirty page may reach its segment only after
// the records covering its changes are on stable storage.
func (l *Log) FlushTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// An already-satisfied gate succeeds even on a closed log: the records are
	// durable, so writeback of the covered pages (e.g. the pool closing after
	// the log) must not be refused.
	if lsn <= l.flushed {
		return nil
	}
	if l.closed {
		return ErrClosed
	}
	return l.flushLocked()
}

// WriteLSN returns the current append position — the LSN a freshly dirtied
// page must record as its pageLSN.
func (l *Log) WriteLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendEnd
}

// Durable reports the durable prefix end.
func (l *Log) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// Commit appends a commit record for txid and blocks until it is on stable
// storage. Concurrent commits are absorbed by the background flusher into
// shared fsyncs (group commit).
func (l *Log) Commit(txid uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if _, err := l.appendLocked(&Record{Kind: RecCommit, TxID: txid}); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	req := commitReq{done: make(chan error, 1)}
	select {
	case l.commitCh <- req:
	case <-l.stopCh:
		return ErrClosed
	}
	select {
	case err := <-req.done:
		if err == nil {
			l.mu.Lock()
			l.stats.Commits++
			l.mu.Unlock()
		}
		return err
	case <-l.stopCh:
		return ErrClosed
	}
}

// AppendAbort appends an abort record for txid without forcing the log:
// abort durability is not required — a lost abort record simply makes the
// transaction a recovery loser, and undoing its (forward plus compensation)
// records reproduces the same rolled-back state.
func (l *Log) AppendAbort(txid uint64) error {
	_, err := l.Append(&Record{Kind: RecAbort, TxID: txid})
	return err
}

// flusher is the group-commit daemon: it takes the first waiting committer,
// collects companions until the batch is full or the max wait elapses, then
// flushes the whole log once and releases the batch.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	batch := make([]commitReq, 0, l.opts.GroupCommitBatch)
	for {
		var first commitReq
		select {
		case first = <-l.commitCh:
		case <-l.stopCh:
			l.drainCommitCh()
			return
		}
		batch = append(batch[:0], first)
		if l.opts.GroupCommitMaxWait > 0 {
			timer := time.NewTimer(l.opts.GroupCommitMaxWait)
		collect:
			for len(batch) < l.opts.GroupCommitBatch {
				select {
				case r := <-l.commitCh:
					batch = append(batch, r)
				case <-timer.C:
					break collect
				case <-l.stopCh:
					break collect
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < l.opts.GroupCommitBatch {
				select {
				case r := <-l.commitCh:
					batch = append(batch, r)
				default:
					break drain
				}
			}
		}
		flushStart := time.Now()
		l.mu.Lock()
		err := l.flushLocked()
		if err == nil {
			l.stats.Batches++
		}
		l.mu.Unlock()
		l.opts.FlushNs.ObserveSince(flushStart)
		for _, r := range batch {
			r.done <- err
		}
	}
}

func (l *Log) drainCommitCh() {
	for {
		select {
		case r := <-l.commitCh:
			r.done <- ErrClosed
		default:
			return
		}
	}
}

// Nudge returns a channel that receives a signal whenever the log has grown
// past Options.CheckpointBytes since the last checkpoint. The owner runs its
// checkpoint loop off this channel.
func (l *Log) Nudge() <-chan struct{} { return l.nudgeCh }

// opSpan marks one logical mutation in flight: its records may already be in
// the log while its page writes are still landing.
type opSpan struct {
	start uint64 // append position when the operation began
}

// OpBegin registers an in-flight logical mutation and returns its release
// function. A fuzzy checkpoint must not advance the replay start past the
// position at which any still-running operation began: the operation's
// records can precede the checkpoint while its page writes land after the
// checkpoint's page flush, so those records must survive truncation for
// redo. The owner brackets every mutating entry point (including autocommit
// ones, which the active-transaction table never sees) with OpBegin/release.
func (l *Log) OpBegin() func() {
	l.mu.Lock()
	sp := &opSpan{start: l.appendEnd}
	l.inflight[sp] = struct{}{}
	l.mu.Unlock()
	return func() {
		l.mu.Lock()
		delete(l.inflight, sp)
		l.mu.Unlock()
	}
}

// CheckpointToken snapshots the state a fuzzy checkpoint began with.
type CheckpointToken struct {
	active map[uint64]uint64
	// beginLSN pins the replay start: no record at or above it existed when
	// the checkpoint began, so everything the checkpoint's page flush can
	// have missed — mutations logged after this point, and in-flight
	// operations' earlier records via the min below — stays replayable.
	beginLSN uint64
}

// BeginCheckpoint captures the active-transaction table and the append
// position (lowered to the start of the oldest in-flight operation). The
// owner then makes its base state durable (flush pages, write catalogs) and
// calls EndCheckpoint.
func (l *Log) BeginCheckpoint() *CheckpointToken {
	l.mu.Lock()
	defer l.mu.Unlock()
	act := make(map[uint64]uint64, len(l.active))
	for k, v := range l.active {
		act[k] = v
	}
	pin := l.appendEnd
	for sp := range l.inflight {
		if sp.start < pin {
			pin = sp.start
		}
	}
	return &CheckpointToken{active: act, beginLSN: pin}
}

// EndCheckpoint completes a fuzzy checkpoint: it appends the checkpoint
// record, forces the whole log, advances the replay start to the oldest LSN
// still needed (never past the position captured at BeginCheckpoint — a
// transaction that began and committed during the checkpoint dirtied pages
// the checkpoint's flush never saw, and its records must survive for redo —
// and no further than the first LSN of any live transaction), durably
// rewrites the meta block, and drops log segments that fell entirely behind
// the new start.
func (l *Log) EndCheckpoint(cp *CheckpointToken) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.appendLocked(&Record{Kind: RecCheckpoint, Active: cp.active}); err != nil {
		return err
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	start := cp.beginLSN
	for _, first := range cp.active {
		if first < start {
			start = first
		}
	}
	// Transactions that began between BeginCheckpoint and now also pin the
	// replay start: their records must survive truncation for undo.
	for _, first := range l.active {
		if first < start {
			start = first
		}
	}
	l.start = start
	if err := l.writeMetaLocked(); err != nil {
		return err
	}
	l.sinceCp = 0
	l.stats.Checkpoints++
	l.recycleLocked(start / l.segBytes)
	return nil
}

// recycleLocked removes segment files below firstLive, sweeping upward from
// the persisted floor so segments whose removal once failed — even in a
// previous incarnation, where they are no longer in l.segs — are retried
// until the disk space is actually reclaimed. The floor only advances past
// confirmed removals; it becomes durable with the next checkpoint's meta
// write (a crash in between merely repeats already-idempotent removes).
func (l *Log) recycleLocked(firstLive uint64) {
	for idx := l.floor; idx < firstLive; idx++ {
		if err := l.files.Remove(segName(idx)); err != nil {
			return
		}
		delete(l.segs, idx)
		l.floor = idx + 1
	}
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close stops the group-commit flusher and writes out any buffered records
// (without waiting for commit acknowledgements: callers still blocked in
// Commit receive ErrClosed). The segment devices stay with the manager.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.stopCh) })
	<-l.flusherDone
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	var err error
	if l.ready {
		err = l.flushLocked()
	}
	l.closed = true
	return err
}
