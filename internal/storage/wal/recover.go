package wal

import (
	"encoding/binary"
	"fmt"
)

// Applier executes logical redo and undo of op records during recovery. The
// access system implements it with idempotent, state-tested operators: redo
// of an insert whose atom already exists overwrites it, undo of an insert
// whose atom is already gone is a no-op, and so on — so repeating history is
// safe no matter where the last run stopped.
type Applier interface {
	Redo(r *Record) error
	Undo(r *Record) error
}

// RecoverStats summarizes one recovery pass.
type RecoverStats struct {
	Records uint64 // valid records scanned (excluding padding)
	Redone  uint64 // op records replayed forward
	Undone  uint64 // loser op records rolled back
	Winners int    // transactions with a durable commit or abort record
	Losers  int    // transactions rolled back by this pass
}

// Recover positions the log and repairs the database: it scans the valid
// record prefix from the replay start, replays every op record forward in
// LSN order (repeating history, winners and losers alike), then rolls the
// losers — transactions with records but no commit or abort mark — back in
// reverse LSN order using their pre-images. On return the log is ready for
// appends, with a bumped generation so any stale pre-crash record beyond the
// valid end can never be mistaken for live log.
//
// The owner must complete a checkpoint before acknowledging new commits: the
// checkpoint makes the replayed state and the new generation durable (until
// then, a repeated crash simply repeats this recovery).
func (l *Log) Recover(ap Applier) (RecoverStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return RecoverStats{}, ErrClosed
	}

	var st RecoverStats

	// Analysis: find the valid end and each transaction's fate.
	resolved := make(map[uint64]bool) // txid -> has commit/abort record
	seen := make(map[uint64]bool)
	end, err := l.scanLocked(l.start, func(lsn uint64, r *Record) error {
		st.Records++
		switch r.Kind {
		case RecCommit, RecAbort:
			resolved[r.TxID] = true
		case RecInsert, RecUpdate, RecDelete:
			if r.TxID != 0 {
				seen[r.TxID] = true
			}
		}
		return nil
	})
	if err != nil {
		return st, err
	}

	// Redo: repeat history in LSN order, collecting loser records for undo.
	var loserOps []*Record
	if st.Records > 0 && ap != nil {
		if _, err := l.scanLocked(l.start, func(lsn uint64, r *Record) error {
			switch r.Kind {
			case RecInsert, RecUpdate, RecDelete:
				if err := ap.Redo(r); err != nil {
					return fmt.Errorf("wal: redo %s @%d: %w", r.Kind, lsn, err)
				}
				st.Redone++
				if r.TxID != 0 && !resolved[r.TxID] {
					loserOps = append(loserOps, r.clone())
				}
			}
			return nil
		}); err != nil {
			return st, err
		}
		// Undo losers in reverse global LSN order.
		for i := len(loserOps) - 1; i >= 0; i-- {
			r := loserOps[i]
			if err := ap.Undo(r); err != nil {
				return st, fmt.Errorf("wal: undo %s tx %d: %w", r.Kind, r.TxID, err)
			}
			st.Undone++
		}
	}
	st.Winners = len(resolved)
	for txid := range seen {
		if !resolved[txid] {
			st.Losers++
		}
	}

	// Position the log for appends: the tail partial block is reloaded so
	// new records rewrite it in place.
	l.appendEnd = end
	l.flushed = end
	tailStart := end - end%blockSize
	l.bufBase = tailStart
	l.buf = l.buf[:0]
	if keep := end - tailStart; keep > 0 {
		segIdx := tailStart / l.segBytes
		blk := int((tailStart % l.segBytes) / blockSize)
		d, err := l.segment(segIdx)
		if err != nil {
			return st, err
		}
		if d.Blocks() > blk {
			if err := d.ReadBlock(blk, l.blockBuf); err != nil {
				return st, fmt.Errorf("wal: reload tail block: %w", err)
			}
		} else {
			for i := range l.blockBuf {
				l.blockBuf[i] = 0
			}
		}
		l.buf = append(l.buf, l.blockBuf[:keep]...)
	}
	l.active = make(map[uint64]uint64)
	if st.Records > 0 {
		l.stats.Recoveries++
	}
	// Bump the generation so stale records beyond the valid end (from the
	// life this pass just replayed) can never pass CRC validation once new
	// records overwrite part of the stream. The bumped generation becomes
	// durable with the owner's post-recovery checkpoint; a crash before that
	// point replays the old-generation prefix exactly as this pass did.
	l.gen++
	l.ready = true
	return st, nil
}

// scanLocked walks the valid record prefix from stream offset from, calling
// fn for every record (padding excluded). It returns the end of the valid
// log: the first offset whose frame is missing, zeroed, or fails its CRC —
// the torn tail a crash mid-flush legitimately leaves behind.
func (l *Log) scanLocked(from uint64, fn func(lsn uint64, r *Record) error) (uint64, error) {
	off := from
	for {
		segIdx := off / l.segBytes
		segStart := segIdx * l.segBytes
		data, err := l.loadSegmentLocked(segIdx)
		if err != nil {
			return 0, err
		}
		jump := false
		for {
			so := off - segStart
			if l.segBytes-so < recHeaderSize {
				off = segStart + l.segBytes
				jump = true
				break
			}
			length := binary.LittleEndian.Uint32(data[so:])
			sum := binary.LittleEndian.Uint32(data[so+4:])
			if length == 0 {
				if sum == padMagic {
					off = segStart + l.segBytes
					jump = true
					break
				}
				return off, nil
			}
			if uint64(length) > l.segBytes-so-recHeaderSize {
				return off, nil
			}
			payload := data[so+recHeaderSize : so+recHeaderSize+uint64(length)]
			if recCRC(l.gen, off, payload) != sum {
				return off, nil
			}
			r, err := decodePayload(payload)
			if err != nil {
				// Checksummed but unparseable: surface it, this is not a
				// torn tail.
				return off, err
			}
			if err := fn(off, r); err != nil {
				return off, err
			}
			off += recHeaderSize + uint64(length)
		}
		if !jump {
			return off, nil
		}
	}
}

// loadSegmentLocked reads a whole segment's allocated blocks into one
// buffer; unallocated space reads as zeros (end-of-log).
func (l *Log) loadSegmentLocked(idx uint64) ([]byte, error) {
	d, err := l.segment(idx)
	if err != nil {
		return nil, err
	}
	data := make([]byte, l.segBytes)
	n := d.Blocks()
	if max := int(l.segBytes / blockSize); n > max {
		n = max
	}
	if n > 0 {
		if err := d.ReadChain(0, n, data[:n*blockSize]); err != nil {
			return nil, fmt.Errorf("wal: read segment %d: %w", idx, err)
		}
	}
	return data, nil
}
