// Package buffer implements PRIMA's database buffer (§3.3).
//
// The pool caches pages of several sizes (the five file-manager block sizes)
// in one buffer, mediates all page access through fix/unfix (pin/unpin)
// semantics, and writes dirty pages back on eviction or flush. Replacement
// is pluggable: the paper's modified LRU that handles different page sizes
// within one buffer, a statically partitioned buffer, and the classic
// single-size LRU are all provided (see policy.go).
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"prima/internal/storage/page"
	"prima/internal/storage/segment"
)

// Errors returned by the pool.
var (
	ErrNoVictim      = errors.New("buffer: cannot free enough space (pages pinned or too large)")
	ErrNotRegistered = errors.New("buffer: segment not registered")
	ErrStillPinned   = errors.New("buffer: page still pinned")
)

// frame is a resident page.
type frame struct {
	pid     segment.PageID
	data    []byte
	pins    int
	dirty   bool
	lruElem *list.Element
}

// Handle is a fixed (pinned) page. It must be released with Unfix exactly
// once; the page data must not be touched after release.
type Handle struct {
	pool  *Pool
	frame *frame
}

// Page returns the fixed page for reading or writing. Callers that modify
// the page must call MarkDirty before unfixing.
func (h *Handle) Page() page.Page { return page.Page(h.frame.data) }

// PageID returns the identity of the fixed page.
func (h *Handle) PageID() segment.PageID { return h.frame.pid }

// MarkDirty records that the page content changed and must be written back.
func (h *Handle) MarkDirty() {
	h.pool.mu.Lock()
	h.frame.dirty = true
	h.pool.mu.Unlock()
}

// Stats counts pool activity. Hits and misses are tracked per page size so
// experiment A1 can report per-class hit ratios.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
	HitsBySize map[int]int64
	MissBySize map[int]int64
}

// HitRatio returns hits / (hits+misses), or 0 when idle.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pool is the database buffer. It is safe for concurrent use; individual
// fixed pages are not latched, so callers that write pages coordinate among
// themselves (the access system serializes writers per structure).
type Pool struct {
	mu       sync.Mutex
	policy   Policy
	frames   map[segment.PageID]*frame
	segments map[segment.ID]*segment.Segment
	stats    Stats
}

// NewPool creates a buffer pool with the given replacement policy.
func NewPool(p Policy) *Pool {
	return &Pool{
		policy:   p,
		frames:   make(map[segment.PageID]*frame),
		segments: make(map[segment.ID]*segment.Segment),
		stats:    Stats{HitsBySize: make(map[int]int64), MissBySize: make(map[int]int64)},
	}
}

// Register makes a segment's pages reachable through the pool.
func (p *Pool) Register(s *segment.Segment) {
	p.mu.Lock()
	p.segments[s.ID()] = s
	p.mu.Unlock()
}

// PolicyName returns the active replacement policy's name.
func (p *Pool) PolicyName() string { return p.policy.Name() }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.stats
	out.HitsBySize = make(map[int]int64, len(p.stats.HitsBySize))
	for k, v := range p.stats.HitsBySize {
		out.HitsBySize[k] = v
	}
	out.MissBySize = make(map[int]int64, len(p.stats.MissBySize))
	for k, v := range p.stats.MissBySize {
		out.MissBySize[k] = v
	}
	return out
}

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	p.stats = Stats{HitsBySize: make(map[int]int64), MissBySize: make(map[int]int64)}
	p.mu.Unlock()
}

// Resident returns the number of resident pages.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Fix pins the page into the buffer, reading it from its segment on a miss,
// and returns a handle. The page must exist on disk (use FixNew for pages
// that were just allocated and never written).
func (p *Pool) Fix(pid segment.PageID) (*Handle, error) {
	return p.fix(pid, false)
}

// FixNew pins a freshly allocated page without reading the device. The frame
// starts zeroed and dirty; the caller must Init the page before use.
func (p *Pool) FixNew(pid segment.PageID) (*Handle, error) {
	return p.fix(pid, true)
}

func (p *Pool) fix(pid segment.PageID, fresh bool) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	if f, ok := p.frames[pid]; ok {
		f.pins++
		p.policy.OnTouch(f)
		p.stats.Hits++
		p.stats.HitsBySize[len(f.data)]++
		return &Handle{pool: p, frame: f}, nil
	}

	seg, ok := p.segments[pid.Seg]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotRegistered, pid)
	}
	size := seg.PageSize()
	p.stats.Misses++
	p.stats.MissBySize[size]++

	if err := p.makeRoomLocked(size); err != nil {
		return nil, err
	}

	f := &frame{pid: pid, data: make([]byte, size), pins: 1}
	if fresh {
		f.dirty = true
	} else {
		if err := seg.ReadPage(pid.No, f.data); err != nil {
			return nil, fmt.Errorf("buffer: fix %v: %w", pid, err)
		}
		if err := page.Page(f.data).Validate(); err != nil {
			return nil, fmt.Errorf("buffer: fix %v: %w", pid, err)
		}
	}
	p.frames[pid] = f
	p.policy.OnInsert(f)
	return &Handle{pool: p, frame: f}, nil
}

// makeRoomLocked evicts victims chosen by the policy until a page of the
// given size fits. Dirty victims are written back.
func (p *Pool) makeRoomLocked(size int) error {
	victims, err := p.policy.EvictFor(size)
	if err != nil {
		return err
	}
	for _, f := range victims {
		if f.dirty {
			if err := p.writebackLocked(f); err != nil {
				return err
			}
		}
		p.policy.OnRemove(f)
		delete(p.frames, f.pid)
		p.stats.Evictions++
	}
	return nil
}

func (p *Pool) writebackLocked(f *frame) error {
	seg, ok := p.segments[f.pid.Seg]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotRegistered, f.pid)
	}
	page.Page(f.data).SealChecksum()
	if err := seg.WritePage(f.pid.No, f.data); err != nil {
		return fmt.Errorf("buffer: writeback %v: %w", f.pid, err)
	}
	f.dirty = false
	p.stats.Writebacks++
	return nil
}

// Unfix releases a handle obtained from Fix or FixNew.
func (p *Pool) Unfix(h *Handle) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h.frame.pins > 0 {
		h.frame.pins--
	}
}

// Release is a convenience alias so handles can be released with defer.
func (h *Handle) Release() { h.pool.Unfix(h) }

// Flush writes the page back if resident and dirty.
func (p *Pool) Flush(pid segment.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pid]
	if !ok || !f.dirty {
		return nil
	}
	return p.writebackLocked(f)
}

// FlushAll writes every dirty resident page back to its segment.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.writebackLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// Invalidate drops a page from the pool without writing it back, e.g. after
// the page was freed. It fails if the page is pinned.
func (p *Pool) Invalidate(pid segment.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pid]
	if !ok {
		return nil
	}
	if f.pins > 0 {
		return fmt.Errorf("%w: %v", ErrStillPinned, pid)
	}
	p.policy.OnRemove(f)
	delete(p.frames, pid)
	return nil
}

// Close flushes all dirty pages and drops every frame.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.writebackLocked(f); err != nil {
				return err
			}
		}
		p.policy.OnRemove(f)
	}
	p.frames = make(map[segment.PageID]*frame)
	return nil
}
