// Package buffer implements PRIMA's database buffer (§3.3).
//
// The pool caches pages of several sizes (the five file-manager block sizes)
// in one buffer, mediates all page access through fix/unfix (pin/unpin)
// semantics, and writes dirty pages back on eviction or flush. Replacement
// is pluggable: the paper's modified LRU that handles different page sizes
// within one buffer, a statically partitioned buffer, and the classic
// single-size LRU are all provided (see policy.go).
//
// To keep concurrent molecule assemblers from serializing on one latch, the
// pool is lock-striped: frames are spread over N shards keyed by a hash of
// the page identity, each shard with its own mutex, frame table and policy
// instance. A page always hashes to the same shard, so fix/unfix of one page
// stays single-lock; pages of different shards proceed fully in parallel.
// NewPool builds the degenerate one-shard pool (exact historical semantics);
// NewShardedPool stripes the budget over many shards.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"prima/internal/obs"
	"prima/internal/storage/page"
	"prima/internal/storage/segment"
)

// Errors returned by the pool.
var (
	ErrNoVictim      = errors.New("buffer: cannot free enough space (pages pinned or too large)")
	ErrNotRegistered = errors.New("buffer: segment not registered")
	ErrStillPinned   = errors.New("buffer: page still pinned")
)

// LogGate is the write-ahead-log side of the WAL-before-page protocol. The
// pool stamps every dirtied frame with the log's current append position and
// forces the log up to that position before the frame's bytes can reach the
// device — so no page version ever becomes durable before the log records
// that produced it.
type LogGate interface {
	// WriteLSN returns the current append position: all records of
	// mutations performed so far lie strictly below it.
	WriteLSN() uint64
	// FlushTo makes the log durable up to (at least) lsn.
	FlushTo(lsn uint64) error
}

// frame is a resident page.
type frame struct {
	pid     segment.PageID
	data    []byte
	pins    int
	dirty   bool
	pageLSN uint64 // log position that must be durable before writeback
	lruElem *list.Element
}

// Handle is a fixed (pinned) page. It must be released with Unfix exactly
// once; the page data must not be touched after release.
type Handle struct {
	shard *shard
	frame *frame
}

// Page returns the fixed page for reading or writing. Callers that modify
// the page must call MarkDirty before unfixing.
func (h *Handle) Page() page.Page { return page.Page(h.frame.data) }

// PageID returns the identity of the fixed page.
func (h *Handle) PageID() segment.PageID { return h.frame.pid }

// MarkDirty records that the page content changed and must be written back.
// With a log gate installed, the frame is stamped with the log's current
// append position: the mutation's log records lie below it, so forcing the
// log to the stamp before writeback preserves WAL-before-page.
func (h *Handle) MarkDirty() {
	var lsn uint64
	if g := h.shard.pool.gate; g != nil {
		lsn = g.WriteLSN()
	}
	h.shard.mu.Lock()
	h.frame.dirty = true
	if lsn > h.frame.pageLSN {
		h.frame.pageLSN = lsn
	}
	h.shard.mu.Unlock()
}

// Stats counts pool activity. Hits and misses are tracked per page size so
// experiment A1 can report per-class hit ratios. For sharded pools the
// counters are aggregated over all shards.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
	HitsBySize map[int]int64
	MissBySize map[int]int64
}

// HitRatio returns hits / (hits+misses), or 0 when idle.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// add accumulates other into s.
func (s *Stats) add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	for k, v := range other.HitsBySize {
		s.HitsBySize[k] += v
	}
	for k, v := range other.MissBySize {
		s.MissBySize[k] += v
	}
}

// shard is one lock stripe of the pool: a frame table plus a policy instance
// managing a slice of the byte budget.
type shard struct {
	pool   *Pool
	mu     sync.Mutex
	policy Policy
	frames map[segment.PageID]*frame
	stats  Stats
}

func newShard(pool *Pool, policy Policy) *shard {
	return &shard{
		pool:   pool,
		policy: policy,
		frames: make(map[segment.PageID]*frame),
		stats:  Stats{HitsBySize: make(map[int]int64), MissBySize: make(map[int]int64)},
	}
}

// Pool is the database buffer. It is safe for concurrent use; individual
// fixed pages are not latched, so callers that write pages coordinate among
// themselves (the access system serializes writers per structure).
type Pool struct {
	shards []*shard
	mask   uint32 // len(shards)-1; shard count is a power of two

	segMu    sync.RWMutex
	segments map[segment.ID]*segment.Segment

	// gate, when set, enforces WAL-before-page on every writeback. Installed
	// once at open time, before the pool sees concurrent traffic.
	gate LogGate

	// missNs, when set, observes the latency of each miss-path page read
	// (device read plus validation), in nanoseconds. Installed once at open
	// time, like gate.
	missNs *obs.Histogram
}

// SetLogGate installs the write-ahead log the pool must force before writing
// dirty pages. Call before the pool is used concurrently.
func (p *Pool) SetLogGate(g LogGate) { p.gate = g }

// SetMissHist installs the latency observer for miss-path page reads. Call
// before the pool is used concurrently.
func (p *Pool) SetMissHist(h *obs.Histogram) { p.missNs = h }

// NewPool creates a single-shard buffer pool with the given replacement
// policy — the fully serialized configuration, kept for tools and tests that
// reason about exact eviction order.
func NewPool(p Policy) *Pool {
	pool := &Pool{segments: make(map[segment.ID]*segment.Segment), mask: 0}
	pool.shards = []*shard{newShard(pool, p)}
	return pool
}

// RoundShards returns the shard count a sharded pool will actually use for
// a request of n: the next power of two, minimum 1. Budget planners divide
// by this so the per-shard slice matches the real stripe count.
func RoundShards(n int) int {
	shards := 1
	for shards < n {
		shards <<= 1
	}
	return shards
}

// NewShardedPool creates a lock-striped pool of n shards (rounded up to a
// power of two, minimum 1); factory is called once per shard so every stripe
// owns an independent policy instance over its slice of the budget.
func NewShardedPool(factory func() Policy, n int) *Pool {
	shards := RoundShards(n)
	pool := &Pool{segments: make(map[segment.ID]*segment.Segment), mask: uint32(shards - 1)}
	pool.shards = make([]*shard, shards)
	for i := range pool.shards {
		pool.shards[i] = newShard(pool, factory())
	}
	return pool
}

// shardOf hashes a page identity onto its stripe.
func (p *Pool) shardOf(pid segment.PageID) *shard {
	if p.mask == 0 {
		return p.shards[0]
	}
	h := uint32(pid.Seg)*0x9E3779B1 ^ pid.No*0x85EBCA77
	h ^= h >> 16
	return p.shards[h&p.mask]
}

// Shards returns the number of lock stripes.
func (p *Pool) Shards() int { return len(p.shards) }

// Register makes a segment's pages reachable through the pool.
func (p *Pool) Register(s *segment.Segment) {
	p.segMu.Lock()
	p.segments[s.ID()] = s
	p.segMu.Unlock()
}

func (p *Pool) segment(id segment.ID) (*segment.Segment, bool) {
	p.segMu.RLock()
	s, ok := p.segments[id]
	p.segMu.RUnlock()
	return s, ok
}

// PolicyName returns the active replacement policy's name.
func (p *Pool) PolicyName() string { return p.shards[0].policy.Name() }

// Stats returns a snapshot of the pool counters, aggregated over all shards.
// Each shard is snapshotted under its own lock, so under concurrent load the
// aggregate is per-shard-consistent, not a single instant across the pool —
// quiesce the pool when exact counts matter (the experiment harnesses do).
func (p *Pool) Stats() Stats {
	out := Stats{HitsBySize: make(map[int]int64), MissBySize: make(map[int]int64)}
	for _, sh := range p.shards {
		sh.mu.Lock()
		out.add(sh.stats)
		sh.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() {
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.stats = Stats{HitsBySize: make(map[int]int64), MissBySize: make(map[int]int64)}
		sh.mu.Unlock()
	}
}

// Resident returns the number of resident pages.
func (p *Pool) Resident() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += len(sh.frames)
		sh.mu.Unlock()
	}
	return n
}

// Pinned returns the number of currently pinned frames — the pin-accounting
// probe behind the decoded-atom cache tests: a cache hit must leave the pool
// untouched, so reads served above the buffer neither fix pages nor show up
// here.
func (p *Pool) Pinned() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Fix pins the page into the buffer, reading it from its segment on a miss,
// and returns a handle. The page must exist on disk (use FixNew for pages
// that were just allocated and never written).
func (p *Pool) Fix(pid segment.PageID) (*Handle, error) {
	return p.shardOf(pid).fix(pid, false)
}

// FixNew pins a freshly allocated page without reading the device. The frame
// starts zeroed and dirty; the caller must Init the page before use.
func (p *Pool) FixNew(pid segment.PageID) (*Handle, error) {
	return p.shardOf(pid).fix(pid, true)
}

func (sh *shard) fix(pid segment.PageID, fresh bool) (*Handle, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	if f, ok := sh.frames[pid]; ok {
		f.pins++
		sh.policy.OnTouch(f)
		sh.stats.Hits++
		sh.stats.HitsBySize[len(f.data)]++
		return &Handle{shard: sh, frame: f}, nil
	}

	seg, ok := sh.pool.segment(pid.Seg)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotRegistered, pid)
	}
	size := seg.PageSize()
	sh.stats.Misses++
	sh.stats.MissBySize[size]++

	if err := sh.makeRoomLocked(size); err != nil {
		return nil, err
	}

	f := &frame{pid: pid, data: make([]byte, size), pins: 1}
	if fresh {
		f.dirty = true
		if g := sh.pool.gate; g != nil {
			f.pageLSN = g.WriteLSN()
		}
	} else {
		readStart := time.Now()
		if err := seg.ReadPage(pid.No, f.data); err != nil {
			return nil, fmt.Errorf("buffer: fix %v: %w", pid, err)
		}
		if err := page.Page(f.data).Validate(); err != nil {
			return nil, fmt.Errorf("buffer: fix %v: %w", pid, err)
		}
		sh.pool.missNs.ObserveSince(readStart)
	}
	sh.frames[pid] = f
	sh.policy.OnInsert(f)
	return &Handle{shard: sh, frame: f}, nil
}

// makeRoomLocked evicts victims chosen by the shard's policy until a page of
// the given size fits. Dirty victims are written back.
func (sh *shard) makeRoomLocked(size int) error {
	victims, err := sh.policy.EvictFor(size)
	if err != nil {
		return err
	}
	for _, f := range victims {
		if f.dirty {
			if err := sh.writebackLocked(f); err != nil {
				return err
			}
		}
		sh.policy.OnRemove(f)
		delete(sh.frames, f.pid)
		sh.stats.Evictions++
	}
	return nil
}

func (sh *shard) writebackLocked(f *frame) error {
	seg, ok := sh.pool.segment(f.pid.Seg)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotRegistered, f.pid)
	}
	if g := sh.pool.gate; g != nil && f.pageLSN > 0 {
		if err := g.FlushTo(f.pageLSN); err != nil {
			return fmt.Errorf("buffer: force log for %v: %w", f.pid, err)
		}
	}
	page.Page(f.data).SealChecksum()
	if err := seg.WritePage(f.pid.No, f.data); err != nil {
		return fmt.Errorf("buffer: writeback %v: %w", f.pid, err)
	}
	f.dirty = false
	sh.stats.Writebacks++
	return nil
}

// Unfix releases a handle obtained from Fix or FixNew.
func (p *Pool) Unfix(h *Handle) { h.Release() }

// Release is a convenience alias so handles can be released with defer.
func (h *Handle) Release() {
	h.shard.mu.Lock()
	if h.frame.pins > 0 {
		h.frame.pins--
	}
	h.shard.mu.Unlock()
}

// Flush writes the page back if resident and dirty.
func (p *Pool) Flush(pid segment.PageID) error {
	sh := p.shardOf(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[pid]
	if !ok || !f.dirty {
		return nil
	}
	return sh.writebackLocked(f)
}

// FlushAll writes every dirty resident page back to its segment.
func (p *Pool) FlushAll() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				if err := sh.writebackLocked(f); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// Invalidate drops a page from the pool without writing it back, e.g. after
// the page was freed. It fails if the page is pinned.
func (p *Pool) Invalidate(pid segment.PageID) error {
	sh := p.shardOf(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[pid]
	if !ok {
		return nil
	}
	if f.pins > 0 {
		return fmt.Errorf("%w: %v", ErrStillPinned, pid)
	}
	sh.policy.OnRemove(f)
	delete(sh.frames, pid)
	return nil
}

// Close flushes all dirty pages and drops every frame.
func (p *Pool) Close() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				if err := sh.writebackLocked(f); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
			sh.policy.OnRemove(f)
		}
		sh.frames = make(map[segment.PageID]*frame)
		sh.mu.Unlock()
	}
	return nil
}
