package buffer

import (
	"fmt"
	"sync"
	"testing"

	"prima/internal/storage/device"
	"prima/internal/storage/page"
	"prima/internal/storage/segment"
)

func TestShardedPoolBasics(t *testing.T) {
	seg, pages := newSeg(t, 1, device.B1K, 8)
	pool := NewShardedPool(func() Policy { return NewSizeAwareLRU(64 * 1024) }, 4)
	pool.Register(seg)
	if pool.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", pool.Shards())
	}

	for _, no := range pages {
		h, err := pool.Fix(segment.PageID{Seg: 1, No: no})
		if err != nil {
			t.Fatalf("Fix: %v", err)
		}
		h.Release()
	}
	if pool.Resident() != 8 {
		t.Fatalf("resident = %d, want 8", pool.Resident())
	}
	st := pool.Stats()
	if st.Misses != 8 || st.Hits != 0 {
		t.Fatalf("stats = %d hits / %d misses, want 0/8", st.Hits, st.Misses)
	}
	// Refix: all hits, aggregated across shards.
	for _, no := range pages {
		h, err := pool.Fix(segment.PageID{Seg: 1, No: no})
		if err != nil {
			t.Fatalf("Fix: %v", err)
		}
		h.Release()
	}
	if st := pool.Stats(); st.Hits != 8 {
		t.Fatalf("aggregated hits = %d, want 8", st.Hits)
	}
}

func TestShardedPoolRoundsToPowerOfTwo(t *testing.T) {
	pool := NewShardedPool(func() Policy { return NewSizeAwareLRU(1024) }, 5)
	if pool.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8 (next power of two)", pool.Shards())
	}
}

// TestShardedPoolConcurrent hammers a small sharded pool from many
// goroutines: concurrent Fix/Unfix, dirtying, and eviction pressure (the
// budget holds only a fraction of the working set). Run under -race this is
// the safety net for the lock striping.
func TestShardedPoolConcurrent(t *testing.T) {
	const nPages = 64
	seg, pages := newSeg(t, 1, device.B1K, nPages)
	// Each shard holds ~4 pages: plenty of eviction and writeback traffic.
	pool := NewShardedPool(func() Policy { return NewSizeAwareLRU(4 * device.B1K) }, 4)
	pool.Register(seg)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				no := pages[(g*131+i*17)%nPages]
				h, err := pool.Fix(segment.PageID{Seg: 1, No: no})
				if err != nil {
					errs <- fmt.Errorf("worker %d: Fix %d: %v", g, no, err)
					return
				}
				if i%7 == 0 {
					if _, err := h.Page().Insert([]byte{byte(g), byte(i)}); err == nil {
						h.MarkDirty()
					}
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := pool.Stats()
	if st.Hits+st.Misses != 8*400 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*400)
	}
	if st.Evictions == 0 {
		t.Fatal("expected eviction pressure across shards")
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Every page must still validate on disk after concurrent writebacks.
	raw := make([]byte, seg.PageSize())
	for _, no := range pages {
		if err := seg.ReadPage(no, raw); err != nil {
			t.Fatalf("ReadPage %d: %v", no, err)
		}
		if err := page.Page(raw).Validate(); err != nil {
			t.Fatalf("page %d corrupt after concurrent run: %v", no, err)
		}
	}
}

// TestShardStability checks a page always lands on the same shard, so
// fix/unfix of one page never crosses a stripe boundary.
func TestShardStability(t *testing.T) {
	pool := NewShardedPool(func() Policy { return NewSizeAwareLRU(1024) }, 8)
	for i := 0; i < 100; i++ {
		pid := segment.PageID{Seg: segment.ID(i % 5), No: uint32(i)}
		first := pool.shardOf(pid)
		for j := 0; j < 3; j++ {
			if pool.shardOf(pid) != first {
				t.Fatalf("pid %v hashed to different shards", pid)
			}
		}
	}
}
