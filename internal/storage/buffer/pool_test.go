package buffer

import (
	"errors"
	"fmt"
	"testing"

	"prima/internal/storage/device"
	"prima/internal/storage/page"
	"prima/internal/storage/segment"
)

// newSeg builds an in-memory segment with n initialized data pages and
// returns it with the page numbers.
func newSeg(t testing.TB, id segment.ID, blockSize, n int) (*segment.Segment, []uint32) {
	t.Helper()
	dev, err := device.NewMem(blockSize)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	seg, err := segment.Create(dev, id, 4096)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	pages := make([]uint32, n)
	buf := make([]byte, blockSize)
	for i := range pages {
		no, err := seg.AllocatePage()
		if err != nil {
			t.Fatalf("AllocatePage: %v", err)
		}
		pg := page.Page(buf)
		pg.Init(page.TypeData, uint32(id), no)
		if _, err := pg.Insert([]byte(fmt.Sprintf("page-%d", no))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		pg.SealChecksum()
		if err := seg.WritePage(no, buf); err != nil {
			t.Fatalf("WritePage: %v", err)
		}
		pages[i] = no
	}
	return seg, pages
}

func TestFixHitMiss(t *testing.T) {
	seg, pages := newSeg(t, 1, device.B1K, 4)
	pool := NewPool(NewSizeAwareLRU(64 * 1024))
	pool.Register(seg)

	pid := segment.PageID{Seg: 1, No: pages[0]}
	h, err := pool.Fix(pid)
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	rec, err := h.Page().Read(0)
	if err != nil || string(rec) != fmt.Sprintf("page-%d", pages[0]) {
		t.Fatalf("page content = %q, %v", rec, err)
	}
	h.Release()

	// Second fix is a hit.
	h2, err := pool.Fix(pid)
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	h2.Release()
	st := pool.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
	if st.HitsBySize[device.B1K] != 1 {
		t.Fatalf("per-size hits = %v", st.HitsBySize)
	}
}

func TestUnregisteredSegment(t *testing.T) {
	pool := NewPool(NewSizeAwareLRU(1024))
	_, err := pool.Fix(segment.PageID{Seg: 9, No: 1})
	if !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("Fix = %v, want ErrNotRegistered", err)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	seg, pages := newSeg(t, 1, device.B1K, 4)
	// Room for exactly 2 pages.
	pool := NewPool(NewSizeAwareLRU(2 * device.B1K))
	pool.Register(seg)

	// Dirty page 0.
	h, err := pool.Fix(segment.PageID{Seg: 1, No: pages[0]})
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	if _, err := h.Page().Insert([]byte("dirty-marker")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	h.MarkDirty()
	h.Release()

	// Touch two more pages to evict page 0.
	for _, no := range pages[1:3] {
		h, err := pool.Fix(segment.PageID{Seg: 1, No: no})
		if err != nil {
			t.Fatalf("Fix: %v", err)
		}
		h.Release()
	}
	if got := pool.Resident(); got != 2 {
		t.Fatalf("resident = %d, want 2", got)
	}
	st := pool.Stats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("stats = %+v, want evictions and writebacks", st)
	}

	// Re-reading page 0 must see the dirty marker (written back).
	h, err = pool.Fix(segment.PageID{Seg: 1, No: pages[0]})
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	found := false
	h.Page().ForEach(func(_ int, rec []byte) bool {
		if string(rec) == "dirty-marker" {
			found = true
		}
		return true
	})
	h.Release()
	if !found {
		t.Fatal("dirty page content lost on eviction")
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	seg, pages := newSeg(t, 1, device.B1K, 4)
	pool := NewPool(NewSizeAwareLRU(2 * device.B1K))
	pool.Register(seg)

	h0, err := pool.Fix(segment.PageID{Seg: 1, No: pages[0]})
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	h1, err := pool.Fix(segment.PageID{Seg: 1, No: pages[1]})
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	// Pool is full of pinned pages: next fix must fail.
	if _, err := pool.Fix(segment.PageID{Seg: 1, No: pages[2]}); !errors.Is(err, ErrNoVictim) {
		t.Fatalf("Fix with all pinned = %v, want ErrNoVictim", err)
	}
	h0.Release()
	// Now page 0 can be evicted.
	h2, err := pool.Fix(segment.PageID{Seg: 1, No: pages[2]})
	if err != nil {
		t.Fatalf("Fix after release: %v", err)
	}
	h2.Release()
	h1.Release()
}

func TestFixNew(t *testing.T) {
	seg, _ := newSeg(t, 1, device.B1K, 0)
	pool := NewPool(NewSizeAwareLRU(64 * 1024))
	pool.Register(seg)

	no, err := seg.AllocatePage()
	if err != nil {
		t.Fatalf("AllocatePage: %v", err)
	}
	pid := segment.PageID{Seg: 1, No: no}
	h, err := pool.FixNew(pid)
	if err != nil {
		t.Fatalf("FixNew: %v", err)
	}
	h.Page().Init(page.TypeData, 1, no)
	if _, err := h.Page().Insert([]byte("fresh")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	h.Release()

	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	// Read through the segment directly: the flushed page must validate.
	raw := make([]byte, seg.PageSize())
	if err := seg.ReadPage(no, raw); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if err := page.Page(raw).Validate(); err != nil {
		t.Fatalf("flushed page does not validate: %v", err)
	}
}

func TestInvalidate(t *testing.T) {
	seg, pages := newSeg(t, 1, device.B1K, 2)
	pool := NewPool(NewSizeAwareLRU(64 * 1024))
	pool.Register(seg)
	pid := segment.PageID{Seg: 1, No: pages[0]}

	h, err := pool.Fix(pid)
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	if err := pool.Invalidate(pid); !errors.Is(err, ErrStillPinned) {
		t.Fatalf("Invalidate pinned = %v, want ErrStillPinned", err)
	}
	h.Release()
	if err := pool.Invalidate(pid); err != nil {
		t.Fatalf("Invalidate: %v", err)
	}
	if pool.Resident() != 0 {
		t.Fatalf("resident = %d after invalidate", pool.Resident())
	}
	// Invalidate of a non-resident page is a no-op.
	if err := pool.Invalidate(pid); err != nil {
		t.Fatalf("Invalidate absent: %v", err)
	}
}

// TestMixedSizesOnePool exercises the paper's headline buffer feature: pages
// of different sizes coexist in one size-aware pool, and eviction frees
// enough bytes (possibly several small pages for one big page).
func TestMixedSizesOnePool(t *testing.T) {
	small, smallPages := newSeg(t, 1, device.B512, 8)
	big, bigPages := newSeg(t, 2, device.B8K, 2)

	pool := NewPool(NewSizeAwareLRU(10 * 1024)) // fits 8K + a few 512s, not everything
	pool.Register(small)
	pool.Register(big)

	for _, no := range smallPages {
		h, err := pool.Fix(segment.PageID{Seg: 1, No: no})
		if err != nil {
			t.Fatalf("Fix small: %v", err)
		}
		h.Release()
	}
	if pool.Resident() != 8 {
		t.Fatalf("resident = %d, want 8 small pages", pool.Resident())
	}
	// Fixing an 8K page must evict several 512-byte pages.
	h, err := pool.Fix(segment.PageID{Seg: 2, No: bigPages[0]})
	if err != nil {
		t.Fatalf("Fix big: %v", err)
	}
	h.Release()
	// capacity 10240 - 8*512 resident = 6144 free; the 8K page needs 2048
	// more, i.e. four 512-byte victims.
	st := pool.Stats()
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4 small pages displaced by one 8K page", st.Evictions)
	}
}

func TestPartitionedPolicyIsolation(t *testing.T) {
	small, smallPages := newSeg(t, 1, device.B512, 8)
	big, bigPages := newSeg(t, 2, device.B8K, 2)

	pool := NewPool(NewPartitionedLRU(map[int]int64{
		device.B512: 2 * device.B512,
		device.B8K:  device.B8K,
	}))
	pool.Register(small)
	pool.Register(big)

	// Fill the small partition.
	for _, no := range smallPages[:4] {
		h, err := pool.Fix(segment.PageID{Seg: 1, No: no})
		if err != nil {
			t.Fatalf("Fix small: %v", err)
		}
		h.Release()
	}
	// Only 2 small pages fit regardless of the big partition being empty.
	if pool.Resident() != 2 {
		t.Fatalf("resident = %d, want 2 (static partition)", pool.Resident())
	}
	// The big partition admits exactly one 8K page.
	h, err := pool.Fix(segment.PageID{Seg: 2, No: bigPages[0]})
	if err != nil {
		t.Fatalf("Fix big: %v", err)
	}
	h.Release()
	if pool.Resident() != 3 {
		t.Fatalf("resident = %d, want 3", pool.Resident())
	}
	// A size with no partition is rejected.
	dev, _ := device.NewMem(device.B2K)
	seg3, err := segment.Create(dev, 3, 64)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	no, _ := seg3.AllocatePage()
	pool.Register(seg3)
	if _, err := pool.FixNew(segment.PageID{Seg: 3, No: no}); !errors.Is(err, ErrNoVictim) {
		t.Fatalf("Fix unpartitioned size = %v, want ErrNoVictim", err)
	}
}

func TestClassicLRUFrameBudget(t *testing.T) {
	seg, pages := newSeg(t, 1, device.B1K, 5)
	pool := NewPool(NewClassicLRU(3))
	pool.Register(seg)

	for _, no := range pages {
		h, err := pool.Fix(segment.PageID{Seg: 1, No: no})
		if err != nil {
			t.Fatalf("Fix: %v", err)
		}
		h.Release()
	}
	if pool.Resident() != 3 {
		t.Fatalf("resident = %d, want 3 frames", pool.Resident())
	}
	// LRU order: pages[2..4] resident, pages[0..1] evicted. Fixing pages[2]
	// must be a hit.
	before := pool.Stats().Hits
	h, err := pool.Fix(segment.PageID{Seg: 1, No: pages[2]})
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	h.Release()
	if pool.Stats().Hits != before+1 {
		t.Fatal("expected LRU to keep the most recently used pages")
	}
}

func TestCloseFlushes(t *testing.T) {
	seg, pages := newSeg(t, 1, device.B1K, 1)
	pool := NewPool(NewSizeAwareLRU(64 * 1024))
	pool.Register(seg)

	pid := segment.PageID{Seg: 1, No: pages[0]}
	h, err := pool.Fix(pid)
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	if _, err := h.Page().Insert([]byte("close-flush")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	h.MarkDirty()
	h.Release()
	if err := pool.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	raw := make([]byte, seg.PageSize())
	if err := seg.ReadPage(pages[0], raw); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	found := false
	page.Page(raw).ForEach(func(_ int, rec []byte) bool {
		if string(rec) == "close-flush" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("Close did not flush dirty page")
	}
}

// BenchmarkPolicies drives a hot/cold reference pattern over mixed page
// sizes under each policy; the interesting output is the hit ratio (see
// experiment A1 in EXPERIMENTS.md for the full sweep).
func BenchmarkPolicies(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy func() Policy
	}{
		{"size-aware", func() Policy { return NewSizeAwareLRU(48 * 1024) }},
		{"partitioned", func() Policy {
			return NewPartitionedLRU(map[int]int64{device.B512: 24 * 1024, device.B8K: 24 * 1024})
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			small, smallPages := newSeg(b, 1, device.B512, 64)
			big, bigPages := newSeg(b, 2, device.B8K, 8)
			pool := NewPool(tc.policy())
			pool.Register(small)
			pool.Register(big)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var pid segment.PageID
				if i%4 == 0 {
					pid = segment.PageID{Seg: 2, No: bigPages[i%len(bigPages)]}
				} else {
					pid = segment.PageID{Seg: 1, No: smallPages[i%len(smallPages)]}
				}
				h, err := pool.Fix(pid)
				if err != nil {
					b.Fatal(err)
				}
				h.Release()
			}
			b.ReportMetric(pool.Stats().HitRatio(), "hit-ratio")
		})
	}
}

// fakeGate is a LogGate that records the highest position it was asked to
// force and can fail on demand.
type fakeGate struct {
	lsn     uint64
	forced  uint64
	flushes int
	fail    error
}

func (g *fakeGate) WriteLSN() uint64 { return g.lsn }
func (g *fakeGate) FlushTo(lsn uint64) error {
	if g.fail != nil {
		return g.fail
	}
	g.flushes++
	if lsn > g.forced {
		g.forced = lsn
	}
	return nil
}

func TestLogGateForcedBeforeWriteback(t *testing.T) {
	seg, pages := newSeg(t, 1, device.B1K, 2)
	pool := NewPool(NewSizeAwareLRU(64 * 1024))
	gate := &fakeGate{lsn: 700}
	pool.SetLogGate(gate)
	pool.Register(seg)

	pid := segment.PageID{Seg: 1, No: pages[0]}
	h, err := pool.Fix(pid)
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	if _, err := h.Page().Insert([]byte("logged-write")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	h.MarkDirty() // stamps pageLSN = 700
	h.Release()

	// A failing log force must block the page write entirely.
	gate.fail = errors.New("log device down")
	if err := pool.Flush(pid); err == nil {
		t.Fatal("Flush succeeded with the log unforceable")
	}
	buf := make([]byte, device.B1K)
	if err := seg.ReadPage(pages[0], buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	found := false
	page.Page(buf).ForEach(func(_ int, rec []byte) bool {
		if string(rec) == "logged-write" {
			found = true
		}
		return true
	})
	if found {
		t.Fatal("page bytes reached the device before the log was forced")
	}

	// Once the log can be forced, writeback proceeds — and forces at least
	// up to the dirty stamp first.
	gate.fail = nil
	if err := pool.Flush(pid); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if gate.forced < 700 {
		t.Fatalf("log forced to %d, want >= 700 (the pageLSN stamp)", gate.forced)
	}
	if err := seg.ReadPage(pages[0], buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	found = false
	page.Page(buf).ForEach(func(_ int, rec []byte) bool {
		if string(rec) == "logged-write" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("page not written back after successful log force")
	}
}
