package buffer

import (
	"container/list"
	"fmt"
)

// Policy is a page replacement strategy. The paper (§3.3) observes that
// classic algorithms are "only tailored to one page size" and discusses two
// ways out: statically partitioning the buffer by page size (inflexible when
// reference patterns change) or modifying LRU to handle different page sizes
// in one pool — the road PRIMA takes. All three variants are implemented so
// experiment A1 can compare them.
//
// Policies are driven by the pool under the pool's lock; they are not safe
// for standalone concurrent use.
type Policy interface {
	// Name identifies the policy in stats and experiment output.
	Name() string
	// OnInsert records that f became resident.
	OnInsert(f *frame)
	// OnTouch records a reference to resident frame f.
	OnTouch(f *frame)
	// OnRemove records that f left the pool.
	OnRemove(f *frame)
	// EvictFor selects victim frames that must leave the pool so a new
	// page of the given size fits. Pinned frames are skipped. It returns
	// ErrNoVictim if the space cannot be freed.
	EvictFor(size int) ([]*frame, error)
	// CanHold reports whether a page of the given size can ever reside in
	// the pool (e.g. fits its partition).
	CanHold(size int) bool
}

// --- size-aware LRU (PRIMA's modified LRU) ---------------------------------

// sizeAwareLRU keeps a single recency chain over pages of all sizes and
// charges residency in bytes: to admit an incoming page it evicts from the
// cold end until enough bytes are free. This is the paper's "well-known LRU
// algorithm altered in an appropriate way".
type sizeAwareLRU struct {
	capacity int64 // bytes
	resident int64 // bytes currently held
	chain    *list.List
}

// NewSizeAwareLRU returns PRIMA's modified LRU with a byte budget.
func NewSizeAwareLRU(capacityBytes int64) Policy {
	return &sizeAwareLRU{capacity: capacityBytes, chain: list.New()}
}

func (p *sizeAwareLRU) Name() string { return "size-aware-lru" }

func (p *sizeAwareLRU) CanHold(size int) bool { return int64(size) <= p.capacity }

func (p *sizeAwareLRU) OnInsert(f *frame) {
	f.lruElem = p.chain.PushFront(f)
	p.resident += int64(len(f.data))
}

func (p *sizeAwareLRU) OnTouch(f *frame) {
	p.chain.MoveToFront(f.lruElem)
}

func (p *sizeAwareLRU) OnRemove(f *frame) {
	p.chain.Remove(f.lruElem)
	f.lruElem = nil
	p.resident -= int64(len(f.data))
}

func (p *sizeAwareLRU) EvictFor(size int) ([]*frame, error) {
	if !p.CanHold(size) {
		return nil, fmt.Errorf("%w: page of %d bytes exceeds pool capacity %d", ErrNoVictim, size, p.capacity)
	}
	need := int64(size) - (p.capacity - p.resident)
	if need <= 0 {
		return nil, nil
	}
	var victims []*frame
	for e := p.chain.Back(); e != nil && need > 0; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		victims = append(victims, f)
		need -= int64(len(f.data))
	}
	if need > 0 {
		return nil, fmt.Errorf("%w: %d bytes still needed, all remaining frames pinned", ErrNoVictim, need)
	}
	return victims, nil
}

// --- statically partitioned LRU --------------------------------------------

// partitionedLRU divides the buffer into independent parts, one per page
// size, "each of which managed by a dedicated replacement algorithm" — the
// static alternative the paper rejects as "not very flexible when reference
// patterns change".
type partitionedLRU struct {
	parts map[int]*sizeAwareLRU // page size -> dedicated chain
}

// NewPartitionedLRU builds a statically partitioned policy. shares maps a
// page size to the byte budget of its partition. Pages of sizes that have no
// partition cannot enter the pool.
func NewPartitionedLRU(shares map[int]int64) Policy {
	parts := make(map[int]*sizeAwareLRU, len(shares))
	for size, budget := range shares {
		parts[size] = &sizeAwareLRU{capacity: budget, chain: list.New()}
	}
	return &partitionedLRU{parts: parts}
}

func (p *partitionedLRU) Name() string { return "partitioned-lru" }

func (p *partitionedLRU) part(size int) *sizeAwareLRU { return p.parts[size] }

func (p *partitionedLRU) CanHold(size int) bool {
	part := p.part(size)
	return part != nil && part.CanHold(size)
}

func (p *partitionedLRU) OnInsert(f *frame) { p.part(len(f.data)).OnInsert(f) }
func (p *partitionedLRU) OnTouch(f *frame)  { p.part(len(f.data)).OnTouch(f) }
func (p *partitionedLRU) OnRemove(f *frame) { p.part(len(f.data)).OnRemove(f) }

func (p *partitionedLRU) EvictFor(size int) ([]*frame, error) {
	part := p.part(size)
	if part == nil {
		return nil, fmt.Errorf("%w: no partition for page size %d", ErrNoVictim, size)
	}
	return part.EvictFor(size)
}

// --- classic frame-count LRU ------------------------------------------------

// classicLRU is the textbook algorithm "tailored to one page size": it
// budgets frames, not bytes. With uniform page sizes it is exactly LRU; with
// mixed sizes it misbehaves (an 8K page costs the same as a 512-byte page),
// which is the deficiency motivating the modified algorithm.
type classicLRU struct {
	maxFrames int
	chain     *list.List
}

// NewClassicLRU returns a frame-count LRU holding at most maxFrames pages.
func NewClassicLRU(maxFrames int) Policy {
	return &classicLRU{maxFrames: maxFrames, chain: list.New()}
}

func (p *classicLRU) Name() string { return "classic-lru" }

func (p *classicLRU) CanHold(int) bool { return p.maxFrames >= 1 }

func (p *classicLRU) OnInsert(f *frame) { f.lruElem = p.chain.PushFront(f) }
func (p *classicLRU) OnTouch(f *frame)  { p.chain.MoveToFront(f.lruElem) }
func (p *classicLRU) OnRemove(f *frame) {
	p.chain.Remove(f.lruElem)
	f.lruElem = nil
}

func (p *classicLRU) EvictFor(int) ([]*frame, error) {
	if p.chain.Len() < p.maxFrames {
		return nil, nil
	}
	need := p.chain.Len() - p.maxFrames + 1
	var victims []*frame
	for e := p.chain.Back(); e != nil && need > 0; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		victims = append(victims, f)
		need--
	}
	if need > 0 {
		return nil, fmt.Errorf("%w: all frames pinned", ErrNoVictim)
	}
	return victims, nil
}
