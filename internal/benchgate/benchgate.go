// Package benchgate is the shared CI bench-gate runner: a package registers
// the benchmarks it gates, and Run re-executes them against the committed
// baseline (BENCH_baseline.json at the repository root), failing on
// allocs/op or ns/op regressions beyond the baseline's headroom factors.
//
// One baseline file serves every gating package; Run only enforces the keys
// the calling package registered, so each package's gate skips entries that
// belong to another package's benchmarks.
//
// When the BENCH_RESULTS environment variable names a file, Run also writes
// the measured profile of every gated benchmark there, in the baseline's own
// JSON format (measured allocs/ns with the baseline's headroom factors
// carried over). Gates in different packages run as separate `go test`
// invocations, so Run merges into an existing file rather than overwriting —
// CI uploads the merged file as an artifact, and a PR that legitimately
// shifts a profile can promote it to the new BENCH_baseline.json.
package benchgate

import (
	"encoding/json"
	"os"
	"testing"
)

// Baseline is one committed benchmark profile. Allocation counts are
// deterministic across machines — unlike wall clock — so allocs gates
// typically carry a tight headroom (1.25x), while ns/op gates exist to
// catch order-of-magnitude cliffs and carry a wide CI-stability headroom
// (3x).
type Baseline struct {
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Headroom    float64 `json:"headroom,omitempty"` // allocs/op headroom factor
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	NsHeadroom  float64 `json:"ns_headroom,omitempty"`
}

// Load reads and parses a baseline file.
func Load(path string) (map[string]Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var baselines map[string]Baseline
	if err := json.Unmarshal(data, &baselines); err != nil {
		return nil, err
	}
	return baselines, nil
}

// Run gates every registered benchmark against its baseline entry. A
// registered benchmark without a baseline entry is a test failure (the gate
// would silently not gate); a baseline entry without a registered benchmark
// is skipped (it belongs to another package's gate).
func Run(t *testing.T, baselinePath string, benches map[string]func(b *testing.B)) {
	baselines, err := Load(baselinePath)
	if err != nil {
		t.Fatalf("load baseline: %v", err)
	}
	results := make(map[string]Baseline, len(benches))
	for name, fn := range benches {
		base, ok := baselines[name]
		if !ok {
			t.Errorf("registered benchmark %q has no baseline entry in %s", name, baselinePath)
			continue
		}
		if base.AllocsPerOp <= 0 && base.NsPerOp <= 0 {
			t.Errorf("baseline %q is empty: %+v", name, base)
			continue
		}
		res := testing.Benchmark(fn)
		results[name] = Baseline{
			AllocsPerOp: float64(res.AllocsPerOp()),
			Headroom:    base.Headroom,
			NsPerOp:     float64(res.NsPerOp()),
			NsHeadroom:  base.NsHeadroom,
		}
		if base.AllocsPerOp > 0 {
			if base.Headroom < 1 {
				t.Fatalf("baseline %q: allocs headroom %v < 1", name, base.Headroom)
			}
			got, limit := float64(res.AllocsPerOp()), base.AllocsPerOp*base.Headroom
			t.Logf("%s: %.0f allocs/op (baseline %.0f, limit %.0f)", name, got, base.AllocsPerOp, limit)
			if got > limit {
				t.Errorf("%s: allocs/op regression: %.0f > limit %.0f (baseline %.0f x headroom %.2f) — "+
					"fix the regression or re-measure and update %s",
					name, got, limit, base.AllocsPerOp, base.Headroom, baselinePath)
			}
		}
		if base.NsPerOp > 0 {
			if base.NsHeadroom < 1 {
				t.Fatalf("baseline %q: ns headroom %v < 1", name, base.NsHeadroom)
			}
			got, limit := float64(res.NsPerOp()), base.NsPerOp*base.NsHeadroom
			t.Logf("%s: %.0f ns/op (baseline %.0f, limit %.0f)", name, got, base.NsPerOp, limit)
			if got > limit {
				t.Errorf("%s: ns/op regression: %.0f > limit %.0f (baseline %.0f x headroom %.2f) — "+
					"fix the regression or re-measure and update %s",
					name, got, limit, base.NsPerOp, base.NsHeadroom, baselinePath)
			}
		}
	}
	if path := os.Getenv("BENCH_RESULTS"); path != "" {
		if err := writeResults(path, results); err != nil {
			t.Errorf("write BENCH_RESULTS artifact %s: %v", path, err)
		}
	}
}

// writeResults merges the measured profiles into the artifact file named by
// BENCH_RESULTS. Merging (rather than overwriting) lets the separate root and
// wire gate invocations accumulate into one artifact.
func writeResults(path string, results map[string]Baseline) error {
	merged := map[string]Baseline{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &merged); err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for name, r := range results {
		merged[name] = r
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
