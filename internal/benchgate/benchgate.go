// Package benchgate is the shared CI bench-gate runner: a package registers
// the benchmarks it gates, and Run re-executes them against the committed
// baseline (BENCH_baseline.json at the repository root), failing on
// allocs/op or ns/op regressions beyond the baseline's headroom factors.
//
// One baseline file serves every gating package; Run only enforces the keys
// the calling package registered, so each package's gate skips entries that
// belong to another package's benchmarks.
package benchgate

import (
	"encoding/json"
	"os"
	"testing"
)

// Baseline is one committed benchmark profile. Allocation counts are
// deterministic across machines — unlike wall clock — so allocs gates
// typically carry a tight headroom (1.25x), while ns/op gates exist to
// catch order-of-magnitude cliffs and carry a wide CI-stability headroom
// (3x).
type Baseline struct {
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Headroom    float64 `json:"headroom,omitempty"` // allocs/op headroom factor
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	NsHeadroom  float64 `json:"ns_headroom,omitempty"`
}

// Load reads and parses a baseline file.
func Load(path string) (map[string]Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var baselines map[string]Baseline
	if err := json.Unmarshal(data, &baselines); err != nil {
		return nil, err
	}
	return baselines, nil
}

// Run gates every registered benchmark against its baseline entry. A
// registered benchmark without a baseline entry is a test failure (the gate
// would silently not gate); a baseline entry without a registered benchmark
// is skipped (it belongs to another package's gate).
func Run(t *testing.T, baselinePath string, benches map[string]func(b *testing.B)) {
	baselines, err := Load(baselinePath)
	if err != nil {
		t.Fatalf("load baseline: %v", err)
	}
	for name, fn := range benches {
		base, ok := baselines[name]
		if !ok {
			t.Errorf("registered benchmark %q has no baseline entry in %s", name, baselinePath)
			continue
		}
		if base.AllocsPerOp <= 0 && base.NsPerOp <= 0 {
			t.Errorf("baseline %q is empty: %+v", name, base)
			continue
		}
		res := testing.Benchmark(fn)
		if base.AllocsPerOp > 0 {
			if base.Headroom < 1 {
				t.Fatalf("baseline %q: allocs headroom %v < 1", name, base.Headroom)
			}
			got, limit := float64(res.AllocsPerOp()), base.AllocsPerOp*base.Headroom
			t.Logf("%s: %.0f allocs/op (baseline %.0f, limit %.0f)", name, got, base.AllocsPerOp, limit)
			if got > limit {
				t.Errorf("%s: allocs/op regression: %.0f > limit %.0f (baseline %.0f x headroom %.2f) — "+
					"fix the regression or re-measure and update %s",
					name, got, limit, base.AllocsPerOp, base.Headroom, baselinePath)
			}
		}
		if base.NsPerOp > 0 {
			if base.NsHeadroom < 1 {
				t.Fatalf("baseline %q: ns headroom %v < 1", name, base.NsHeadroom)
			}
			got, limit := float64(res.NsPerOp()), base.NsPerOp*base.NsHeadroom
			t.Logf("%s: %.0f ns/op (baseline %.0f, limit %.0f)", name, got, base.NsPerOp, limit)
			if got > limit {
				t.Errorf("%s: ns/op regression: %.0f > limit %.0f (baseline %.0f x headroom %.2f) — "+
					"fix the regression or re-measure and update %s",
					name, got, limit, base.NsPerOp, base.NsHeadroom, baselinePath)
			}
		}
	}
}
