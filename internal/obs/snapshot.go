package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// MetricsSnapshot is one coherent sample of a Registry: every counter,
// gauge, and histogram by name. It is self-contained (plain data, no
// pointers back into the registry), JSON-serializable for the wire `stats`
// op, and renderable as Prometheus text or flat CSV.
type MetricsSnapshot struct {
	Counters map[string]uint64       `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"hists"`
}

// Counter returns the named counter's value (0 if absent).
func (ms *MetricsSnapshot) Counter(name string) uint64 {
	if ms == nil {
		return 0
	}
	return ms.Counters[name]
}

// Gauge returns the named gauge's value (0 if absent).
func (ms *MetricsSnapshot) Gauge(name string) float64 {
	if ms == nil {
		return 0
	}
	return ms.Gauges[name]
}

// Hist returns the named histogram snapshot (empty if absent).
func (ms *MetricsSnapshot) Hist(name string) HistSnapshot {
	if ms == nil {
		return HistSnapshot{}
	}
	return ms.Hists[name]
}

// Merge unions two snapshots into a new one: disjoint names pass through,
// colliding counters and histograms are summed/merged, colliding gauges take
// the other side's value. Used to combine client-side and server-side
// samples into one report.
func (ms *MetricsSnapshot) Merge(other *MetricsSnapshot) *MetricsSnapshot {
	out := &MetricsSnapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistSnapshot{},
	}
	for _, src := range []*MetricsSnapshot{ms, other} {
		if src == nil {
			continue
		}
		for n, v := range src.Counters {
			out.Counters[n] += v
		}
		for n, v := range src.Gauges {
			out.Gauges[n] = v
		}
		for n, h := range src.Hists {
			if prev, ok := out.Hists[n]; ok {
				out.Hists[n] = prev.Merge(h)
			} else {
				out.Hists[n] = h
			}
		}
	}
	return out
}

// promName maps an internal metric name to a Prometheus metric name:
// "prima_" prefix, with the "_ns" latency suffix rewritten to "_seconds"
// (values are scaled to match).
func promName(name string) (string, bool) {
	seconds := strings.HasSuffix(name, "_ns")
	if seconds {
		name = strings.TrimSuffix(name, "_ns") + "_seconds"
	}
	return "prima_" + name, seconds
}

// PrometheusText renders the snapshot in the Prometheus text exposition
// format. Counters and gauges map directly; histograms are emitted as native
// Prometheus histograms with cumulative le buckets (only the populated
// buckets plus +Inf — a valid sparse encoding), with nanosecond metrics
// converted to seconds per Prometheus convention.
func (ms *MetricsSnapshot) PrometheusText(w io.Writer) error {
	for _, name := range sortedKeys(ms.Counters) {
		pn, _ := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, ms.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(ms.Gauges) {
		pn, _ := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, ms.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(ms.Hists) {
		hs := ms.Hists[name]
		pn, seconds := promName(name)
		scale := 1.0
		if seconds {
			scale = 1e-9
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum uint64
		for _, b := range hs.Buckets {
			cum += b.Count
			_, hi := histBucketBounds(b.Idx)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, hi*scale, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, hs.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, float64(hs.Sum)*scale, pn, hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the snapshot as flat CSV — one row per scalar fact
// (kind,name,field,value) — for spreadsheet or script post-processing.
// Histograms expand to count/sum/mean and the standard quantiles.
func (ms *MetricsSnapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,name,field,value"); err != nil {
		return err
	}
	for _, name := range sortedKeys(ms.Counters) {
		if _, err := fmt.Fprintf(w, "counter,%s,value,%d\n", name, ms.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(ms.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge,%s,value,%g\n", name, ms.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(ms.Hists) {
		hs := ms.Hists[name]
		rows := []struct {
			field string
			v     float64
		}{
			{"count", float64(hs.Count)},
			{"sum", float64(hs.Sum)},
			{"mean", hs.Mean()},
			{"p50", hs.P50},
			{"p90", hs.P90},
			{"p99", hs.P99},
			{"p999", hs.P999},
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(w, "hist,%s,%s,%g\n", name, r.field, r.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving snapshots from src: Prometheus
// text by default, CSV with ?format=csv, JSON with ?format=json. Used by
// primad's -metrics-addr endpoint.
func Handler(src func() *MetricsSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ms := src()
		switch req.URL.Query().Get("format") {
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			_ = ms.WriteCSV(w)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(ms)
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = ms.PrometheusText(w)
		}
	})
}
