// Request tracing: a Trace is one request's tree of timed Spans, each span
// carrying counters for the work it covered (atoms decoded, pages pinned,
// cache hits, WAL bytes). Aggregate metrics (obs.go) say *that* p99 moved;
// a trace says *which query, which plan, which stage*.
//
// The design goals mirror the metrics core:
//
//   - Dependency-free and nil-safe: every method on *Tracer, *Trace and
//     *Span no-ops on a nil receiver, so a disabled call site costs one
//     branch and instrumentation never needs guards.
//   - Lock-cheap on the hot path: span counters are atomic adds (parallel
//     assembly workers update the same span concurrently); completed traces
//     land in rings of atomic pointers, never under a lock held during
//     request work.
//
// Retention is decided when a trace finishes: head-sampled traces (1-in-N
// at Begin) go to the recent ring; traces over the slow threshold go to the
// slow ring and emit one structured log line. When a slow threshold is set,
// every request is traced — the cost is bounded and the decision whether to
// keep the trace needs the final latency anyway.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span counter indices. Plan facts that are not additive (access kind,
// plan-cache outcome, pushdown shape) travel as string attributes instead.
const (
	CtrAtomsDecoded = iota // atoms decoded from storage records
	CtrPagesPinned         // distinct pages touched by record reads
	CtrCacheHits           // atom-cache hits
	CtrCacheMisses         // atom-cache misses
	CtrWALBytes            // undo+redo bytes appended to the write-ahead log
	CtrAtoms               // atoms emitted in result molecules
	CtrMolecules           // molecules emitted
	CtrDecodeNs            // wall nanoseconds spent in batched read+decode
	numCounters
)

// ctrNames maps counter indices to their snapshot keys.
var ctrNames = [numCounters]string{
	"atoms_decoded", "pages_pinned", "cache_hits", "cache_misses",
	"wal_bytes", "atoms", "molecules", "decode_ns",
}

// TracerConfig sets the knobs a Tracer starts with; all of them can be
// adjusted live via the Set methods.
type TracerConfig struct {
	// SampleRate keeps roughly 1-in-N traces in the recent ring (0 = no
	// head sampling).
	SampleRate int
	// SlowThreshold retains every trace at least this slow in the slow
	// ring (0 = no slow-query log). Setting it traces every request.
	SlowThreshold time.Duration
	// RingSize and SlowRingSize bound the two rings (defaults 64 / 64).
	RingSize     int
	SlowRingSize int
	// Logf, when set, receives one structured line per slow query.
	Logf func(format string, args ...any)
}

// Tracer decides which requests to trace and retains completed traces.
// A nil Tracer is valid and never traces.
type Tracer struct {
	sampleRate atomic.Int64 // head sampling: keep 1-in-N (0 = off)
	slowNs     atomic.Int64 // retain traces at least this slow (0 = off)
	seq        atomic.Uint64
	epoch      int64 // process-start reference for trace ids
	recent     traceRing
	slow       traceRing

	mu   sync.Mutex
	logf func(format string, args ...any)
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	if cfg.SlowRingSize <= 0 {
		cfg.SlowRingSize = 64
	}
	t := &Tracer{epoch: time.Now().UnixNano()}
	t.recent.init(cfg.RingSize)
	t.slow.init(cfg.SlowRingSize)
	t.sampleRate.Store(int64(cfg.SampleRate))
	t.slowNs.Store(int64(cfg.SlowThreshold))
	t.logf = cfg.Logf
	return t
}

// SetSampleRate changes the head-sampling rate (1-in-n; 0 disables).
func (t *Tracer) SetSampleRate(n int) {
	if t == nil {
		return
	}
	t.sampleRate.Store(int64(n))
}

// SetSlowThreshold changes the slow-query threshold (0 disables).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slowNs.Store(int64(d))
}

// SlowThreshold returns the current slow-query threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNs.Load())
}

// Enabled reports whether Begin can currently return a non-nil trace.
func (t *Tracer) Enabled() bool {
	return t != nil && (t.sampleRate.Load() > 0 || t.slowNs.Load() > 0)
}

// Begin starts a trace named name, or returns nil when tracing is off —
// the nil flows through every instrumentation site as a no-op. The head
// sampling decision is taken here; slow retention is decided at Finish.
func (t *Tracer) Begin(name string) *Trace {
	if t == nil {
		return nil
	}
	rate := t.sampleRate.Load()
	slow := t.slowNs.Load()
	if rate <= 0 && slow <= 0 {
		return nil
	}
	n := t.seq.Add(1)
	sampled := rate > 0 && n%uint64(rate) == 0
	if !sampled && slow <= 0 {
		return nil
	}
	return t.begin(name, n, sampled)
}

// BeginForced starts a trace regardless of sampling. Used by EXPLAIN
// ANALYZE, which needs the span tree for exactly one execution. Forced
// traces skip the recent ring (they were not sampled) but still hit the
// slow ring if over threshold. Safe on a nil tracer (returns a detached
// trace that is never retained).
func (t *Tracer) BeginForced(name string) *Trace {
	if t == nil {
		return (&Tracer{epoch: time.Now().UnixNano()}).BeginForced(name)
	}
	return t.begin(name, t.seq.Add(1), false)
}

func (t *Tracer) begin(name string, n uint64, sampled bool) *Trace {
	tr := &Trace{
		tracer:  t,
		id:      fmt.Sprintf("%x-%x", uint64(t.epoch)&0xffffffff, n),
		sampled: sampled,
		start:   time.Now(),
	}
	tr.root = &Span{trace: tr, name: name, start: tr.start}
	return tr
}

// Recent returns the head-sampled traces, newest first.
func (t *Tracer) Recent() []*TraceSnapshot {
	if t == nil {
		return nil
	}
	return t.recent.snapshot()
}

// Slow returns the over-threshold traces, newest first.
func (t *Tracer) Slow() []*TraceSnapshot {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// Trace is one request's span tree. All methods are safe on a nil receiver.
type Trace struct {
	tracer  *Tracer
	id      string
	sampled bool
	start   time.Time
	root    *Span
	fin     atomic.Bool
}

// ID returns the trace id ("" on nil), echoed to clients for correlation.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Root returns the root span.
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// SetAttr sets a root-span attribute; convenience for request-level facts
// (the MQL text, the wire op).
func (tr *Trace) SetAttr(k, v string) { tr.Root().SetAttr(k, v) }

// Finish ends the root span, snapshots the trace, and applies retention:
// sampled traces go to the recent ring; traces at or over the slow
// threshold go to the slow ring and emit one log line. Returns the
// snapshot (nil on a nil trace) so callers like EXPLAIN ANALYZE can render
// it directly. Finishing twice is a no-op returning nil.
func (tr *Trace) Finish() *TraceSnapshot {
	if tr == nil || !tr.fin.CompareAndSwap(false, true) {
		return nil
	}
	tr.root.End()
	snap := tr.snapshot()
	t := tr.tracer
	if t == nil {
		return snap
	}
	if tr.sampled {
		t.recent.push(snap)
	}
	if slow := t.slowNs.Load(); slow > 0 && snap.DurationNs >= slow {
		t.slow.push(snap)
		t.mu.Lock()
		logf := t.logf
		t.mu.Unlock()
		if logf != nil {
			logf("slow-query trace=%s dur=%s name=%s attrs=%v",
				snap.ID, time.Duration(snap.DurationNs), snap.Root.Name, snap.Root.Attrs)
		}
	}
	return snap
}

func (tr *Trace) snapshot() *TraceSnapshot {
	root := tr.root.snapshot(tr.start)
	return &TraceSnapshot{
		ID:         tr.id,
		Start:      tr.start,
		DurationNs: root.DurationNs,
		Root:       root,
	}
}

// Span is one timed stage of a trace. Counter updates are atomic adds, so
// parallel assembly workers may share a span. Child creation and attribute
// writes take the span's mutex (they are rare relative to counter updates).
type Span struct {
	trace *Trace
	name  string
	start time.Time
	durNs atomic.Int64 // 0 while open
	ctrs  [numCounters]atomic.Int64

	mu       sync.Mutex
	attrs    []spanAttr
	children []*Span
}

type spanAttr struct{ k, v string }

// Child starts a nested span. Nil-safe: a nil parent yields a nil child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.durNs.CompareAndSwap(0, int64(time.Since(s.start))|1)
}

// SetAttr records a non-additive fact on the span (access kind, plan-cache
// outcome, pushdown shape). Later writes to the same key win.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].k == k {
			s.attrs[i].v = v
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, spanAttr{k, v})
	s.mu.Unlock()
}

// Add bumps one of the span counters (Ctr* indices) by n.
func (s *Span) Add(ctr int, n int64) {
	if s == nil || ctr < 0 || ctr >= numCounters {
		return
	}
	s.ctrs[ctr].Add(n)
}

// Count returns the current value of one counter.
func (s *Span) Count(ctr int) int64 {
	if s == nil || ctr < 0 || ctr >= numCounters {
		return 0
	}
	return s.ctrs[ctr].Load()
}

func (s *Span) snapshot(traceStart time.Time) SpanSnapshot {
	dur := s.durNs.Load()
	if dur == 0 { // still open: snapshot at "now"
		dur = int64(time.Since(s.start)) | 1
	}
	sn := SpanSnapshot{
		Name:       s.name,
		StartNs:    int64(s.start.Sub(traceStart)),
		DurationNs: dur &^ 1,
	}
	s.mu.Lock()
	attrs := make([]spanAttr, len(s.attrs))
	copy(attrs, s.attrs)
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	if len(attrs) > 0 {
		sn.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			sn.Attrs[a.k] = a.v
		}
	}
	for i := 0; i < numCounters; i++ {
		if v := s.ctrs[i].Load(); v != 0 {
			if sn.Counters == nil {
				sn.Counters = map[string]int64{}
			}
			sn.Counters[ctrNames[i]] = v
		}
	}
	for _, c := range children {
		sn.Children = append(sn.Children, c.snapshot(traceStart))
	}
	return sn
}

// TraceSnapshot is a completed, immutable trace — what the rings hold and
// what the wire op and /debug pages serialize.
type TraceSnapshot struct {
	ID         string       `json:"id"`
	Start      time.Time    `json:"start"`
	DurationNs int64        `json:"duration_ns"`
	Root       SpanSnapshot `json:"root"`
}

// SpanSnapshot is one node of a snapshot's span tree. StartNs is the offset
// from the trace start.
type SpanSnapshot struct {
	Name       string            `json:"name"`
	StartNs    int64             `json:"start_ns"`
	DurationNs int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Counters   map[string]int64  `json:"counters,omitempty"`
	Children   []SpanSnapshot    `json:"children,omitempty"`
}

// Find returns the first span named name in pre-order, or nil.
func (ts *TraceSnapshot) Find(name string) *SpanSnapshot {
	if ts == nil {
		return nil
	}
	return ts.Root.find(name)
}

func (sn *SpanSnapshot) find(name string) *SpanSnapshot {
	if sn.Name == name {
		return sn
	}
	for i := range sn.Children {
		if f := sn.Children[i].find(name); f != nil {
			return f
		}
	}
	return nil
}

// Render writes the span tree as indented text:
//
//	trace 1a2b-3 dur=1.2ms
//	  exec dur=1.1ms [kind=pathrange cached=miss] atoms_decoded=120
//	    parse dur=40µs
//	    ...
func (ts *TraceSnapshot) Render(w *strings.Builder) {
	if ts == nil {
		return
	}
	fmt.Fprintf(w, "trace %s start=%s dur=%s\n",
		ts.ID, ts.Start.Format(time.RFC3339Nano), time.Duration(ts.DurationNs))
	ts.Root.render(w, 1)
}

// String renders the snapshot to a string.
func (ts *TraceSnapshot) String() string {
	var b strings.Builder
	ts.Render(&b)
	return b.String()
}

func (sn *SpanSnapshot) render(w *strings.Builder, depth int) {
	fmt.Fprintf(w, "%s%s dur=%s", strings.Repeat("  ", depth), sn.Name, time.Duration(sn.DurationNs))
	if len(sn.Attrs) > 0 {
		keys := sortedKeys(sn.Attrs)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + sn.Attrs[k]
		}
		fmt.Fprintf(w, " [%s]", strings.Join(parts, " "))
	}
	if len(sn.Counters) > 0 {
		keys := sortedKeys(sn.Counters)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, sn.Counters[k])
		}
	}
	w.WriteByte('\n')
	for i := range sn.Children {
		sn.Children[i].render(w, depth+1)
	}
}

// MarshalJSON keeps TraceSnapshot directly serializable for the wire op
// and the /debug endpoints (standard struct marshaling; declared so the
// intent survives refactors).
func (ts *TraceSnapshot) MarshalJSON() ([]byte, error) {
	type alias TraceSnapshot
	return json.Marshal((*alias)(ts))
}

// traceRing is a fixed-size ring of completed traces. Writers claim a slot
// with one atomic add and publish with one atomic store; readers load each
// slot atomically. No locks, no allocation beyond the snapshot itself.
type traceRing struct {
	slots []atomic.Pointer[TraceSnapshot]
	next  atomic.Uint64
}

func (r *traceRing) init(n int) { r.slots = make([]atomic.Pointer[TraceSnapshot], n) }

func (r *traceRing) push(ts *TraceSnapshot) {
	if len(r.slots) == 0 {
		return
	}
	i := (r.next.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(ts)
}

// snapshot returns the retained traces, newest first.
func (r *traceRing) snapshot() []*TraceSnapshot {
	out := make([]*TraceSnapshot, 0, len(r.slots))
	for i := range r.slots {
		if ts := r.slots[i].Load(); ts != nil {
			out = append(out, ts)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}
