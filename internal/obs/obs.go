// Package obs is PRIMA's dependency-free metrics core.
//
// Every subsystem on the request path — wire server, data-system engine,
// access system, buffer pool, write-ahead log, transaction manager — records
// into one Registry owned by the access system, so a single Snapshot call
// yields a coherent picture of the whole stack: monotonic counters, point-in-
// time gauges, and log-bucketed latency histograms with p50/p90/p99/p999.
//
// Two recording models coexist:
//
//   - Push: hot paths call Counter.Add / Histogram.Observe on handles they
//     looked up once at construction time. Both are single atomic ops with
//     no locking, so they are safe (and cheap) on paths that run millions of
//     times per second.
//   - Pull: subsystems that already maintain their own counters (atom cache,
//     buffer pool, plan cache, WAL, device manager, wire server health)
//     register CounterFunc/GaugeFunc mirrors that are sampled only when a
//     snapshot is taken. This unifies the pre-existing scattered stats
//     structs without rewriting their hot paths.
//
// Registration is replace-on-collision: re-registering a name swaps the
// source. That makes wiring idempotent — tests that serve the same database
// through several wire servers, or reopen subsystems, simply overwrite the
// previous mirror instead of panicking or double-counting.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so instrumentation
// sites never need to guard against missing wiring.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time int64 value (queue depth, open snapshots, cache
// residents). Safe for concurrent use and on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. Lookups take a mutex (they
// happen at construction time); recording on the returned handles is
// lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	counterFns map[string]func() uint64
	gaugeFns   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		counterFns: make(map[string]func() uint64),
		gaugeFns:   make(map[string]func() float64),
	}
}

// Counter returns the counter registered under name, creating it if needed.
// Safe on a nil registry (returns nil, whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed. Values are interpreted by convention from the name suffix (all
// current histograms record nanoseconds and end in "_ns").
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers fn as a pull-model counter mirror: it is invoked at
// snapshot time. Replaces any previous registration under name.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFns[name] = fn
}

// GaugeFunc registers fn as a pull-model gauge mirror, sampled at snapshot
// time. Replaces any previous registration under name.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Snapshot samples every registered metric into a self-contained
// MetricsSnapshot. Push metrics are read atomically; pull mirrors are
// invoked under no registry lock ordering guarantees beyond "one at a time",
// so mirror functions must be safe to call at any moment.
func (r *Registry) Snapshot() *MetricsSnapshot {
	ms := &MetricsSnapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistSnapshot{},
	}
	if r == nil {
		return ms
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	counterFns := make(map[string]func() uint64, len(r.counterFns))
	for n, fn := range r.counterFns {
		counterFns[n] = fn
	}
	gaugeFns := make(map[string]func() float64, len(r.gaugeFns))
	for n, fn := range r.gaugeFns {
		gaugeFns[n] = fn
	}
	r.mu.Unlock()

	for n, c := range counters {
		ms.Counters[n] = c.Value()
	}
	for n, fn := range counterFns {
		ms.Counters[n] = fn()
	}
	for n, g := range gauges {
		ms.Gauges[n] = float64(g.Value())
	}
	for n, fn := range gaugeFns {
		ms.Gauges[n] = fn()
	}
	for n, h := range hists {
		ms.Hists[n] = h.Snapshot()
	}
	return ms
}

// sortedKeys returns map keys in lexical order, for deterministic rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
