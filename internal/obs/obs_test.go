package obs

import (
	"bytes"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBounds checks that every value lands in a bucket whose bounds
// contain it, across the full dynamic range.
func TestBucketBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := []int64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1023, 1024, 1 << 40, 1 << 62}
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63())
	}
	for _, v := range vals {
		idx := histBucketOf(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		lo, hi := histBucketBounds(idx)
		if float64(v) < lo || float64(v) >= hi {
			t.Fatalf("value %d: bucket %d bounds [%g, %g) do not contain it", v, idx, lo, hi)
		}
	}
	// Buckets tile the line: each bucket's hi is the next bucket's lo.
	for i := 0; i < histBuckets-1; i++ {
		_, hi := histBucketBounds(i)
		lo, _ := histBucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("bucket %d hi %g != bucket %d lo %g", i, hi, i+1, lo)
		}
	}
}

// TestQuantileOracle compares histogram quantiles against exact quantiles
// from the sorted sample, over several distributions. Bucket width is at
// most 25% of the value, so the estimate must land within a modest relative
// error of the true order statistic.
func TestQuantileOracle(t *testing.T) {
	dists := map[string]func(*rand.Rand) int64{
		"uniform":   func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exp":       func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"lognormal": func(r *rand.Rand) int64 { return int64(math.Exp(r.NormFloat64()*2 + 10)) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 5_000_000 + r.Int63n(1_000_000)
			}
			return 10_000 + r.Int63n(5_000)
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			const n = 50_000
			var h Histogram
			samples := make([]int64, n)
			for i := range samples {
				v := gen(rng)
				samples[i] = v
				h.Observe(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			hs := h.Snapshot()
			if hs.Count != n {
				t.Fatalf("count = %d, want %d", hs.Count, n)
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				rank := int(math.Ceil(q*n)) - 1
				exact := float64(samples[rank])
				got := hs.Quantile(q)
				relErr := math.Abs(got-exact) / math.Max(exact, 1)
				if relErr > 0.35 && math.Abs(got-exact) > 2 {
					t.Errorf("q=%g: got %g, exact %g (rel err %.3f)", q, got, exact, relErr)
				}
			}
		})
	}
}

// TestMerge checks that merging two snapshots is indistinguishable from
// recording every observation into one histogram.
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, union Histogram
	for i := 0; i < 20_000; i++ {
		v := int64(rng.ExpFloat64() * 100_000)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		union.Observe(v)
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := union.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("merged has %d buckets, want %d", len(merged.Buckets), len(want.Buckets))
	}
	for i, bkt := range merged.Buckets {
		if bkt != want.Buckets[i] {
			t.Fatalf("bucket %d: %+v != %+v", i, bkt, want.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q=%g: merged %g != union %g", q, merged.Quantile(q), want.Quantile(q))
		}
	}
}

// TestConcurrentHammer drives counters, gauges, and a histogram from many
// goroutines while snapshots are taken — meant to run under -race — and
// checks nothing is lost once the dust settles.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	c := r.Counter("ops")
	g := r.Gauge("depth")
	const workers = 8
	const perWorker = 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Int63n(1_000_000))
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}(int64(w))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	ms := r.Snapshot()
	if got := ms.Counter("ops"); got != workers*perWorker {
		t.Fatalf("ops = %d, want %d", got, workers*perWorker)
	}
	if got := ms.Hist("lat_ns").Count; got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
	if got := ms.Gauge("depth"); got != 0 {
		t.Fatalf("depth = %g, want 0", got)
	}
}

// TestSnapshotWhileRecording checks that snapshots taken mid-recording are
// internally consistent: count equals the bucket total, quantiles are
// ordered, and counts never move backwards across successive snapshots.
func TestSnapshotWhileRecording(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(rng.Int63n(1 << 30))
			}
		}
	}()
	var prev uint64
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		hs := h.Snapshot()
		var total uint64
		for _, b := range hs.Buckets {
			total += b.Count
		}
		if total != hs.Count {
			t.Fatalf("bucket total %d != count %d", total, hs.Count)
		}
		if hs.Count < prev {
			t.Fatalf("count went backwards: %d -> %d", prev, hs.Count)
		}
		prev = hs.Count
		if hs.Count > 0 {
			if !(hs.P50 <= hs.P90 && hs.P90 <= hs.P99 && hs.P99 <= hs.P999) {
				t.Fatalf("quantiles out of order: p50=%g p90=%g p99=%g p999=%g", hs.P50, hs.P90, hs.P99, hs.P999)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestRegistryMirrorsAndRendering covers pull-model mirrors (including
// replace-on-collision), nil-safety, and the three render formats.
func TestRegistryMirrorsAndRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("pushed").Add(5)
	r.Gauge("level").Set(-2)
	r.Histogram("stage_ns").Observe(1500)
	r.CounterFunc("mirrored", func() uint64 { return 1 })
	r.CounterFunc("mirrored", func() uint64 { return 42 }) // replace, not panic
	r.GaugeFunc("ratio", func() float64 { return 0.5 })

	ms := r.Snapshot()
	if ms.Counter("mirrored") != 42 {
		t.Fatalf("mirrored = %d, want 42 (last registration wins)", ms.Counter("mirrored"))
	}
	if ms.Counter("pushed") != 5 || ms.Gauge("level") != -2 || ms.Gauge("ratio") != 0.5 {
		t.Fatalf("unexpected snapshot: %+v", ms)
	}
	if ms.Hist("stage_ns").Count != 1 {
		t.Fatalf("hist count = %d", ms.Hist("stage_ns").Count)
	}

	var prom bytes.Buffer
	if err := ms.PrometheusText(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE prima_pushed counter",
		"prima_pushed 5",
		"# TYPE prima_stage_seconds histogram",
		"prima_stage_seconds_count 1",
		`prima_stage_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, prom.String())
		}
	}

	var csv bytes.Buffer
	if err := ms.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kind,name,field,value", "counter,pushed,value,5", "hist,stage_ns,p99,"} {
		if !strings.Contains(csv.String(), want) {
			t.Fatalf("csv missing %q:\n%s", want, csv.String())
		}
	}

	for _, format := range []string{"", "csv", "json"} {
		req := httptest.NewRequest("GET", "/metrics?format="+format, nil)
		rec := httptest.NewRecorder()
		Handler(func() *MetricsSnapshot { return r.Snapshot() }).ServeHTTP(rec, req)
		if rec.Code != 200 || rec.Body.Len() == 0 {
			t.Fatalf("format %q: code %d, body %d bytes", format, rec.Code, rec.Body.Len())
		}
	}

	// Nil-safety: a nil registry and its handles are inert.
	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("x").Set(1)
	nilReg.Histogram("x").Observe(1)
	nilReg.CounterFunc("x", nil)
	sp := Start(nilReg.Histogram("x"))
	sp.End()
	if ns := nilReg.Snapshot(); len(ns.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestSpan records a real duration through the span API.
func TestSpan(t *testing.T) {
	var h Histogram
	sp := Start(&h)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	hs := h.Snapshot()
	if hs.Count != 1 {
		t.Fatalf("count = %d", hs.Count)
	}
	if hs.P50 < float64(1*time.Millisecond) {
		t.Fatalf("p50 = %gns, want >= 1ms", hs.P50)
	}
}
