package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	trace := tr.Begin("x")
	if trace != nil {
		t.Fatal("nil tracer began a trace")
	}
	// Every instrumentation call must no-op on the nil chain.
	trace.SetAttr("k", "v")
	sp := trace.Root().Child("stage")
	sp.Add(CtrAtomsDecoded, 5)
	sp.SetAttr("kind", "scan")
	sp.End()
	if got := sp.Count(CtrAtomsDecoded); got != 0 {
		t.Fatalf("nil span counted %d", got)
	}
	if id := trace.ID(); id != "" {
		t.Fatalf("nil trace id %q", id)
	}
	if snap := trace.Finish(); snap != nil {
		t.Fatal("nil trace produced a snapshot")
	}
	if tr.Recent() != nil || tr.Slow() != nil {
		t.Fatal("nil tracer retained traces")
	}
	tr.SetSampleRate(10)
	tr.SetSlowThreshold(time.Second)
}

func TestTraceDisabledTracerBeginsNothing(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	if tr.Enabled() {
		t.Fatal("zero-config tracer enabled")
	}
	if trace := tr.Begin("q"); trace != nil {
		t.Fatal("disabled tracer began a trace")
	}
}

func TestTraceSamplingRetention(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 4, RingSize: 64})
	for i := 0; i < 16; i++ {
		tr.Begin("q").Finish()
	}
	got := len(tr.Recent())
	if got != 4 {
		t.Fatalf("1-in-4 sampling over 16 requests kept %d traces, want 4", got)
	}
	if n := len(tr.Slow()); n != 0 {
		t.Fatalf("no slow threshold but %d slow traces", n)
	}
}

func TestTraceSlowRetention(t *testing.T) {
	var logged []string
	var mu sync.Mutex
	tr := NewTracer(TracerConfig{
		SlowThreshold: time.Microsecond,
		Logf: func(f string, args ...any) {
			mu.Lock()
			logged = append(logged, f)
			mu.Unlock()
		},
	})
	trace := tr.Begin("slow-one")
	if trace == nil {
		t.Fatal("slow threshold set but Begin returned nil")
	}
	trace.SetAttr("mql", "SELECT ALL FROM x")
	sp := trace.Root().Child("assemble")
	sp.Add(CtrAtomsDecoded, 7)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	snap := trace.Finish()
	if snap == nil || snap.DurationNs < int64(time.Microsecond) {
		t.Fatalf("snapshot %+v", snap)
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].ID != trace.ID() {
		t.Fatalf("slow ring %v, want the finished trace", slow)
	}
	if len(tr.Recent()) != 0 {
		t.Fatal("unsampled trace leaked into recent ring")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 {
		t.Fatalf("slow query logged %d times", len(logged))
	}
	// The span tree must carry the child and its counter.
	asm := snap.Find("assemble")
	if asm == nil || asm.Counters["atoms_decoded"] != 7 {
		t.Fatalf("assemble span %+v", asm)
	}
	if !strings.Contains(snap.String(), "atoms_decoded=7") {
		t.Fatalf("render missing counter:\n%s", snap.String())
	}
}

func TestTraceFinishIdempotent(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	trace := tr.Begin("q")
	if trace.Finish() == nil {
		t.Fatal("first finish returned nil")
	}
	if trace.Finish() != nil {
		t.Fatal("second finish returned a snapshot")
	}
	if n := len(tr.Recent()); n != 1 {
		t.Fatalf("double finish retained %d traces", n)
	}
}

func TestBeginForced(t *testing.T) {
	tr := NewTracer(TracerConfig{}) // fully disabled
	trace := tr.BeginForced("analyze")
	if trace == nil {
		t.Fatal("forced begin returned nil")
	}
	if snap := trace.Finish(); snap == nil {
		t.Fatal("forced trace produced no snapshot")
	}
	if n := len(tr.Recent()); n != 0 {
		t.Fatalf("forced trace leaked into recent ring (%d)", n)
	}
	var nilTr *Tracer
	if nilTr.BeginForced("x").Finish() == nil {
		t.Fatal("forced begin on nil tracer lost the snapshot")
	}
}

// TestTraceHammer exercises the sampler, both rings, and concurrent span
// counter updates under -race: many goroutines begin/annotate/finish traces
// while readers snapshot the rings.
func TestTraceHammer(t *testing.T) {
	tr := NewTracer(TracerConfig{
		SampleRate:    3,
		SlowThreshold: time.Nanosecond, // everything is "slow": maximal ring churn
		RingSize:      8,
		SlowRingSize:  8,
		Logf:          func(string, ...any) {},
	})
	const writers, readers, perWriter = 8, 4, 200
	stop := make(chan struct{})
	var readerWG, writerWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ts := range tr.Slow() {
					_ = ts.String() // walk the whole tree
				}
				_ = tr.Recent()
			}
		}()
	}
	for i := 0; i < writers; i++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for j := 0; j < perWriter; j++ {
				trace := tr.Begin("hammer")
				sp := trace.Root().Child("stage")
				var inner sync.WaitGroup
				for k := 0; k < 4; k++ { // parallel workers sharing one span
					inner.Add(1)
					go func() {
						defer inner.Done()
						sp.Add(CtrAtomsDecoded, 1)
						sp.Add(CtrCacheHits, 2)
						sp.SetAttr("kind", "scan")
					}()
				}
				inner.Wait()
				sp.End()
				trace.Finish()
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if n := len(tr.Slow()); n == 0 || n > 8 {
		t.Fatalf("slow ring holds %d traces, want 1..8", n)
	}
	for _, ts := range tr.Slow() {
		st := ts.Find("stage")
		if st == nil {
			t.Fatalf("trace %s missing stage span", ts.ID)
		}
		if st.Counters["atoms_decoded"] != 4 || st.Counters["cache_hits"] != 8 {
			t.Fatalf("stage counters %v, want atoms_decoded=4 cache_hits=8", st.Counters)
		}
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, RingSize: 4})
	for i := 0; i < 10; i++ {
		tr.Begin("q").Finish()
	}
	got := tr.Recent()
	if len(got) != 4 {
		t.Fatalf("ring of 4 holds %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start.After(got[i-1].Start) {
			t.Fatal("recent traces not newest-first")
		}
	}
}
