package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values are binned by binary exponent, with each
// power-of-two range split into histSub linear sub-buckets taken from the
// bits just below the leading one. With 2 sub-bits that is 4 sub-buckets per
// octave and a worst-case relative bucket width of 25%, so interpolated
// quantiles carry at most ~±12% relative error — plenty for latency
// percentiles, where the interesting signal is orders of magnitude.
//
// 64 exponents × 4 sub-buckets = 256 buckets of 8 bytes: a histogram is 2 KiB
// of atomics covering the full uint64 range with no configuration, no
// resizing, and no locks. Observe is one atomic add on a bucket plus two for
// count/sum; concurrent observers on different buckets do not contend.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits
	// Exponents histSubBits+1..64 each contribute histSub buckets, on top of
	// the histSub exact small-value buckets: indices 0..251 for 2 sub-bits.
	histBuckets = (64-histSubBits)*histSub + histSub
)

// Histogram is a lock-free log-bucketed histogram. The zero value is ready
// to use; all methods are safe for concurrent use and on a nil receiver.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// histBucketOf maps a non-negative value to its bucket index.
func histBucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	uv := uint64(v)
	if uv < histSub {
		// Small values get exact buckets.
		return int(uv)
	}
	exp := bits.Len64(uv) // >= histSubBits+1 here
	sub := (uv >> uint(exp-1-histSubBits)) & (histSub - 1)
	return (exp-histSubBits)*histSub + int(sub)
}

// histBucketBounds returns the [lo, hi) value range of bucket idx as
// float64s (the top octave's upper bound exceeds uint64).
func histBucketBounds(idx int) (lo, hi float64) {
	if idx < histSub {
		return float64(idx), float64(idx + 1)
	}
	exp := idx/histSub + histSubBits
	sub := idx % histSub
	width := float64(uint64(1) << uint(exp-1-histSubBits))
	lo = float64(uint64(1)<<uint(exp-1)) + float64(sub)*width
	return lo, lo + width
}

// Observe records one value (by convention, nanoseconds of latency).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[histBucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// HistSpan times one stage: obtain it with Start, call End when the stage
// finishes. The zero HistSpan (and any HistSpan over a nil histogram) is a no-op,
// so call sites need no wiring guards.
type HistSpan struct {
	h  *Histogram
	t0 time.Time
}

// Start begins timing a stage against h.
func Start(h *Histogram) HistSpan {
	if h == nil {
		return HistSpan{}
	}
	return HistSpan{h: h, t0: time.Now()}
}

// End records the elapsed time. Safe to call on the zero HistSpan.
func (s HistSpan) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.t0).Nanoseconds())
	}
}

// Snapshot captures the histogram's current state. The per-bucket counts are
// internally consistent (Count is derived from them, never from a separate
// register), so a snapshot taken mid-recording is always a valid histogram;
// Sum is sampled separately and may trail the buckets by in-flight
// observations.
func (h *Histogram) Snapshot() HistSnapshot {
	var hs HistSnapshot
	if h == nil {
		return hs
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		hs.Buckets = append(hs.Buckets, HistBucket{Idx: i, Count: n})
		hs.Count += n
	}
	hs.Sum = h.sum.Load()
	hs.P50 = hs.Quantile(0.50)
	hs.P90 = hs.Quantile(0.90)
	hs.P99 = hs.Quantile(0.99)
	hs.P999 = hs.Quantile(0.999)
	return hs
}

// HistBucket is one non-empty bucket of a snapshot (sparse encoding).
type HistBucket struct {
	Idx   int    `json:"idx"`
	Count uint64 `json:"count"`
}

// HistSnapshot is an immutable, mergeable view of a histogram. Quantiles are
// precomputed for the common percentiles; arbitrary ones come from Quantile.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	P50     float64      `json:"p50"`
	P90     float64      `json:"p90"`
	P99     float64      `json:"p99"`
	P999    float64      `json:"p999"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Quantile returns the value at quantile q in [0, 1], linearly interpolated
// within the containing bucket. Returns 0 for an empty histogram.
func (hs HistSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation (1-based), clamped into range.
	rank := q * float64(hs.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for _, b := range hs.Buckets {
		next := cum + float64(b.Count)
		if rank <= next {
			lo, hi := histBucketBounds(b.Idx)
			frac := (rank - cum) / float64(b.Count)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	// Numerically unreachable: rank <= Count == total of buckets.
	lo, hi := histBucketBounds(hs.Buckets[len(hs.Buckets)-1].Idx)
	_ = lo
	return hi
}

// Merge combines two snapshots into one, as if every observation had been
// recorded into a single histogram. Quantiles are recomputed.
func (hs HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	counts := make(map[int]uint64, len(hs.Buckets)+len(other.Buckets))
	for _, b := range hs.Buckets {
		counts[b.Idx] += b.Count
	}
	for _, b := range other.Buckets {
		counts[b.Idx] += b.Count
	}
	var out HistSnapshot
	for idx := 0; idx < histBuckets; idx++ {
		if n, ok := counts[idx]; ok {
			out.Buckets = append(out.Buckets, HistBucket{Idx: idx, Count: n})
			out.Count += n
		}
	}
	out.Sum = hs.Sum + other.Sum
	out.P50 = out.Quantile(0.50)
	out.P90 = out.Quantile(0.90)
	out.P99 = out.Quantile(0.99)
	out.P999 = out.Quantile(0.999)
	return out
}

// Mean returns the average observed value, or 0 if empty.
func (hs HistSnapshot) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return float64(hs.Sum) / float64(hs.Count)
}
