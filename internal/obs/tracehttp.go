package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// TraceHandler returns an http.Handler serving retained traces from src
// (newest first): indented span-tree text by default, structured JSON with
// ?format=json, at most ?n=K traces. primad mounts it at /debug/slow (the
// slow-query ring) and /debug/traces (the sampled recent ring).
func TraceHandler(src func() []*TraceSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		traces := src()
		if n, err := strconv.Atoi(req.URL.Query().Get("n")); err == nil && n > 0 && n < len(traces) {
			traces = traces[:n]
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(traces)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(traces) == 0 {
			fmt.Fprintln(w, "no traces retained")
			return
		}
		for i, t := range traces {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprint(w, t.String())
		}
	})
}
