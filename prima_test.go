package prima

import (
	"path/filepath"
	"testing"

	"prima/internal/workload/brepgen"
)

func openMem(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestEndToEndQuickstart(t *testing.T) {
	db := openMem(t)
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatalf("DDL: %v", err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), 3); err != nil {
		t.Fatalf("scene: %v", err)
	}

	res, err := db.ExecOne(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Molecules) != 1 || res.Molecules[0].Size() != brepgen.CubeAtoms {
		t.Fatalf("result = %d molecules", len(res.Molecules))
	}
	// The rendered molecule mentions every component type.
	s := res.Molecules[0].String()
	for _, want := range []string{"brep", "face", "edge", "point"} {
		if !contains(s, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCursorAndParallelAgree(t *testing.T) {
	db := openMem(t)
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), 10); err != nil {
		t.Fatal(err)
	}
	q := `SELECT ALL FROM brep-face WHERE brep_no >= 3`

	cur, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.QueryParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 8 || len(par) != len(seq) {
		t.Fatalf("seq=%d par=%d, want 8", len(seq), len(par))
	}
	// Query rejects non-SELECT.
	if _, err := db.Query(`INSERT INTO solid (solid_no) VALUES (1)`); err == nil {
		t.Fatal("Query accepted non-SELECT")
	}
}

func TestTransactionsEndToEnd(t *testing.T) {
	db := openMem(t)
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := tx.Exec(`INSERT INTO solid (solid_no, description) VALUES (1, 'tx')`); err != nil {
		t.Fatal(err)
	}
	// Nested child inserts and aborts: selective rollback.
	child, err := tx.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.Exec(`INSERT INTO solid (solid_no, description) VALUES (2, 'child')`); err != nil {
		t.Fatal(err)
	}
	if err := child.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	res, err := db.ExecOne(`SELECT ALL FROM solid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Molecules) != 1 {
		t.Fatalf("%d solids after selective rollback, want 1", len(res.Molecules))
	}

	// Top-level abort removes everything.
	tx2 := db.Begin()
	if _, err := tx2.Exec(`INSERT INTO solid (solid_no) VALUES (10), (11)`); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	res, _ = db.ExecOne(`SELECT ALL FROM solid`)
	if len(res.Molecules) != 1 {
		t.Fatalf("%d solids after abort, want 1", len(res.Molecules))
	}
}

func TestPersistentDatabase(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(brepgen.SchemaDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := brepgen.BuildScene(db.Engine(), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE ACCESS PATH bno ON brep (brep_no) USING BTREE`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	res, err := db2.ExecOne(`SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1`)
	if err != nil {
		t.Fatalf("query after reopen: %v", err)
	}
	if len(res.Molecules) != 1 || res.Molecules[0].Size() != brepgen.CubeAtoms {
		t.Fatalf("reopened molecule wrong: %d", len(res.Molecules))
	}
	if db2.Stats() == "" {
		t.Fatal("Stats empty")
	}
}
