// Package prima is a Go reproduction of PRIMA, the prototype DBMS kernel
// implementing the Molecule-Atom Data model (MAD) of Härder, Meyer-Wegener,
// Mitschang and Sikeler ("PRIMA — a DBMS Prototype Supporting Engineering
// Applications", VLDB 1987).
//
// A DB speaks MQL, the Molecule Query Language: SQL-like statements whose
// FROM clause names dynamically defined molecule types — trees of atom
// types connected by symmetric associations, materialized at run time:
//
//	db, _ := prima.Open(prima.Config{})
//	defer db.Close()
//	db.Exec(`CREATE ATOM_TYPE node (id: IDENTIFIER, n: INTEGER,
//	          next: SET_OF (REF_TO (node.prev)),
//	          prev: SET_OF (REF_TO (node.next)))`)
//	db.Exec(`INSERT INTO node (n) VALUES (1), (2)`)
//	res, _ := db.Exec(`SELECT ALL FROM node WHERE n = 1`)
//
// Below the data model interface the kernel implements the paper's full
// three-layer architecture: a data system (query planning, molecule
// assembly, recursion, quantifiers, qualified projection), an access system
// (logical addresses, automatic back-reference maintenance, B*-tree and
// grid access paths, sort orders, partitions, atom clusters with deferred
// update, five scan types) and a storage system (segments with five page
// sizes, a size-aware buffer pool, page sequences with chained I/O).
package prima

import (
	"errors"
	"fmt"
	"time"

	"prima/internal/access"
	"prima/internal/access/addr"
	"prima/internal/core"
	"prima/internal/du"
	"prima/internal/mql"
	"prima/internal/obs"
	"prima/internal/txn"
)

// Re-exported result types.
type (
	// Result is the outcome of one MQL statement.
	Result = core.Result
	// Molecule is one molecule occurrence.
	Molecule = core.Molecule
	// MAtom is one atom within a molecule.
	MAtom = core.MAtom
	// LogicalAddr is an atom surrogate.
	LogicalAddr = addr.LogicalAddr
)

// Config tunes a database instance.
type Config struct {
	// Dir is the database directory; empty runs fully in memory.
	Dir string
	// PageSize of primary containers: 512, 1024, 2048, 4096 or 8192
	// (default 8192).
	PageSize int
	// BufferBytes is the buffer pool budget (default 4 MiB).
	BufferBytes int64
	// Policy selects the replacement policy: "size-aware-lru" (default),
	// "partitioned-lru" or "classic-lru".
	Policy string
	// MaxRecursionDepth bounds recursive molecule evaluation (default 64).
	MaxRecursionDepth int
	// BufferShards is the number of lock stripes of the buffer pool
	// (0 picks one per CPU, capped; 1 disables striping).
	BufferShards int
	// AssemblyWorkers is the degree of intra-query parallelism of molecule
	// materialization. 0 keeps the default, DefaultAssemblyWorkers(): every
	// cursor reads through a snapshot of its open epoch, so parallel
	// read-ahead is safe even when iteration interleaves with DML. 1 selects
	// the serial cursor (same snapshot semantics, no read-ahead).
	AssemblyWorkers int
	// AssemblyChunk is the root chunk size for lazy root streaming and
	// worker dispatch (default 64).
	AssemblyChunk int
	// PlanCacheSize caps the engine's LRU of prepared SELECT/DELETE/MODIFY
	// plans, keyed by statement text and schema version (0 keeps the
	// default of core.DefaultPlanCacheSize; negative disables plan caching).
	PlanCacheSize int
	// AtomCacheSize is the atom budget of the decoded-atom cache between
	// the page buffer and molecule assembly: repeated checkouts of the same
	// design objects are served from decoded memory without page fixes or
	// codec runs. The budget is charged by each atom's decoded byte
	// footprint, so wide CAD atoms displace proportionally more narrow ones.
	// 0 keeps the default (access.DefaultAtomCacheAtoms); negative disables
	// the cache. Size it to the hot working set's atom count.
	AtomCacheSize int
	// WAL enables the write-ahead log: DML is logged before it touches
	// pages, Tx.Commit blocks until the commit record is on stable storage
	// (group commit), and Open replays the log after a crash.
	WAL bool
	// GroupCommitMaxWait bounds how long a committing transaction waits for
	// companions to share its fsync (0 keeps the wal package default).
	GroupCommitMaxWait time.Duration
	// WALCheckpointBytes is the log growth between automatic checkpoints
	// (0 keeps the wal package default).
	WALCheckpointBytes int64
	// TraceSampleRate head-samples request tracing: every Nth traced request
	// keeps its full span tree in the recent-trace ring (0 disables
	// sampling; 1 traces everything).
	TraceSampleRate int
	// SlowQueryThreshold always retains the trace of any request at least
	// this slow in the slow-query ring and emits one TraceLogf line per
	// retained trace (0 disables the slow-query log).
	SlowQueryThreshold time.Duration
	// TraceLogf receives one structured line per slow query (nil keeps
	// slow queries in the ring without logging).
	TraceLogf func(format string, args ...any)
}

// DefaultAssemblyWorkers returns the default degree of parallel molecule
// assembly: one worker per CPU, capped at 8. It is what Config.
// AssemblyWorkers = 0 selects.
func DefaultAssemblyWorkers() int { return core.DefaultAssemblyWorkers() }

// DB is a PRIMA database handle.
type DB struct {
	sys    *access.System
	engine *core.Engine
	txm    *txn.Manager
}

// Open creates or opens a database.
func Open(cfg Config) (*DB, error) {
	sys, err := access.Open(access.Config{
		Dir:                cfg.Dir,
		PageSize:           cfg.PageSize,
		BufferBytes:        cfg.BufferBytes,
		Policy:             cfg.Policy,
		BufferShards:       cfg.BufferShards,
		AtomCacheSize:      cfg.AtomCacheSize,
		WAL:                cfg.WAL,
		GroupCommitMaxWait: cfg.GroupCommitMaxWait,
		WALCheckpointBytes: cfg.WALCheckpointBytes,
		TraceSampleRate:    cfg.TraceSampleRate,
		SlowQueryThreshold: cfg.SlowQueryThreshold,
		TraceLogf:          cfg.TraceLogf,
	})
	if err != nil {
		return nil, err
	}
	engine := core.New(sys)
	if cfg.MaxRecursionDepth > 0 {
		engine.SetMaxRecursionDepth(cfg.MaxRecursionDepth)
	}
	if cfg.AssemblyWorkers > 0 {
		engine.SetAssemblyWorkers(cfg.AssemblyWorkers)
	}
	if cfg.AssemblyChunk > 0 {
		engine.SetAssemblyChunk(cfg.AssemblyChunk)
	}
	if cfg.PlanCacheSize > 0 {
		engine.SetPlanCacheSize(cfg.PlanCacheSize)
	} else if cfg.PlanCacheSize < 0 {
		engine.SetPlanCacheSize(0)
	}
	return &DB{sys: sys, engine: engine, txm: txn.NewManager(sys)}, nil
}

// Close checkpoints and releases the database.
func (db *DB) Close() error { return db.sys.Close() }

// Checkpoint flushes all state (including deferred-update propagation).
func (db *DB) Checkpoint() error { return db.sys.Checkpoint() }

// Exec parses and executes an MQL script (one or more statements separated
// by semicolons) in autocommit mode, returning one result per statement.
func (db *DB) Exec(src string) ([]*Result, error) {
	return db.engine.ExecuteScript(src)
}

// ExecTraced is Exec with the script's stages (parse, plan, assemble,
// apply) recorded as child spans of tr's root. A nil trace behaves exactly
// like Exec; the caller owns tr and decides when to Finish it.
func (db *DB) ExecTraced(src string, tr *obs.Trace) ([]*Result, error) {
	return db.engine.ExecuteScriptTraced(src, tr)
}

// Tracer returns the database's request tracer — the sampling/slow-query
// retention configured by Config.TraceSampleRate and
// Config.SlowQueryThreshold. Knobs can be adjusted at runtime via its
// setters; Recent and Slow read the retained trace rings.
func (db *DB) Tracer() *obs.Tracer { return db.sys.Tracer() }

// ExecOne executes exactly one statement.
func (db *DB) ExecOne(src string) (*Result, error) {
	stmt, err := mql.ParseOne(src)
	if err != nil {
		return nil, err
	}
	return db.engine.Execute(stmt)
}

// Query prepares a SELECT and returns a one-molecule-at-a-time cursor. The
// cursor reads at a snapshot of the epoch it opened over: concurrent DML
// never tears or shifts its result set. Plans are served from the engine's
// plan cache, so repeated query texts skip parsing and planning.
func (db *DB) Query(src string) (*Cursor, error) {
	plan, err := db.engine.PlanQuery(src)
	if err != nil {
		if errors.Is(err, core.ErrNotSelect) {
			return nil, errors.New("prima: Query requires a SELECT statement")
		}
		return nil, err
	}
	cur, err := plan.Open()
	if err != nil {
		return nil, err
	}
	return &Cursor{inner: cur}, nil
}

// QueryTraced is Query with the planning and assembly stages recorded on tr:
// planning becomes a "plan" span (or a plan_cache=hit attribute), and the
// cursor's reads and deliveries are charged to an "assemble" span that Close
// ends. The caller owns tr — Finish it after closing the cursor so the span
// tree covers the whole drain. A nil trace behaves exactly like Query.
func (db *DB) QueryTraced(src string, tr *obs.Trace) (*Cursor, error) {
	cur, err := db.engine.OpenQueryTraced(src, tr)
	if err != nil {
		if errors.Is(err, core.ErrNotSelect) {
			return nil, errors.New("prima: QueryTraced requires a SELECT statement")
		}
		return nil, err
	}
	return &Cursor{inner: cur}, nil
}

// QueryParallel executes a SELECT with the given degree of intra-operation
// parallelism (the paper's semantic decomposition into concurrent units of
// work). Results equal the sequential Query in content and order.
func (db *DB) QueryParallel(src string, workers int) ([]*Molecule, error) {
	plan, err := db.engine.PlanQuery(src)
	if err != nil {
		if errors.Is(err, core.ErrNotSelect) {
			return nil, errors.New("prima: QueryParallel requires a SELECT statement")
		}
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	return du.ParallelCollect(plan, workers)
}

// Cursor iterates molecules one at a time.
type Cursor struct{ inner *core.Cursor }

// Next returns the next molecule, or (nil, nil) at the end of the set.
func (c *Cursor) Next() (*Molecule, error) { return c.inner.Next() }

// Epoch returns the snapshot epoch the cursor reads at.
func (c *Cursor) Epoch() uint64 { return c.inner.Epoch() }

// Close releases the cursor.
func (c *Cursor) Close() { c.inner.Close() }

// Collect drains the cursor.
func (c *Cursor) Collect() ([]*Molecule, error) { return c.inner.Collect() }

// --- transactions --------------------------------------------------------------

// Tx is a (possibly nested) transaction. Statements executed through a Tx
// are undone by Abort; nested transactions roll back selectively.
type Tx struct {
	db    *DB
	inner *txn.Tx
}

// Begin starts a top-level transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, inner: db.txm.Begin()}
}

// Begin starts a nested child transaction.
func (t *Tx) Begin() (*Tx, error) {
	child, err := t.inner.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{db: t.db, inner: child}, nil
}

// Exec executes an MQL script within the transaction. SELECTs read at the
// transaction's snapshot epoch as of the start of the script — concurrent
// committers stay invisible, and the transaction's own earlier Exec calls
// are visible (each mutating Exec advances the transaction's view). DML
// always applies to current state under the transaction's locks.
func (t *Tx) Exec(src string) ([]*Result, error) {
	var out []*Result
	err := t.inner.Do(func() error {
		var err error
		out, err = t.db.engine.ExecuteScriptAt(src, t.inner.Epoch())
		return err
	})
	return out, err
}

// Commit finishes the transaction; nested commits merge into the parent.
func (t *Tx) Commit() error { return t.inner.Commit() }

// Abort rolls the transaction's sphere back.
func (t *Tx) Abort() error { return t.inner.Abort() }

// --- introspection --------------------------------------------------------------

// System exposes the access system (statistics, low-level API) for tools,
// experiments and tests.
func (db *DB) System() *access.System { return db.sys }

// Engine exposes the data system.
func (db *DB) Engine() *core.Engine { return db.engine }

// OpenSnapshots returns the number of live MVCC snapshots (each open cursor
// and transaction pins one). After every cursor is closed and every
// transaction finished it must read zero — the leak gauge the wire layer's
// resilience tests assert against when a client dies mid-stream.
func (db *DB) OpenSnapshots() int { return db.sys.OpenSnapshots() }

// Registry exposes the database-wide metrics registry (counters, gauges and
// per-stage latency histograms across all layers).
func (db *DB) Registry() *obs.Registry { return db.sys.Obs() }

// Metrics takes one coherent snapshot of every registered metric — the same
// data the wire `stats` op and primad's /metrics endpoint serve.
func (db *DB) Metrics() *obs.MetricsSnapshot { return db.sys.Obs().Snapshot() }

// Stats summarizes atom cache, buffer, device and WAL activity, rendered
// from one Metrics snapshot so the string view, StatsJSON and /metrics can
// never disagree.
func (db *DB) Stats() string {
	ms := db.Metrics()
	ds := db.sys.Files().Stats()
	hits, misses := float64(ms.Counter("buffer_hits")), float64(ms.Counter("buffer_misses"))
	ratio := 0.0
	if hits+misses > 0 {
		ratio = 100 * hits / (hits + misses)
	}
	out := fmt.Sprintf("atoms: %d hits / %d misses, %d invalidations, %d/%d cached; buffer: %d hits / %d misses (%.1f%%), %d evictions; io: %s",
		ms.Counter("atom_cache_hits"), ms.Counter("atom_cache_misses"), ms.Counter("atom_cache_invalidations"),
		int(ms.Gauge("atom_cache_atoms")), int(ms.Gauge("atom_cache_budget")),
		ms.Counter("buffer_hits"), ms.Counter("buffer_misses"), ratio, ms.Counter("buffer_evictions"), ds)
	if ms.Gauge("wal_enabled") != 0 {
		out += fmt.Sprintf("; wal: %d records / %d bytes, %d commits in %d batches (%d syncs), %d checkpoints, %d recoveries",
			ms.Counter("wal_appends"), ms.Counter("wal_bytes"), ms.Counter("wal_commits"),
			ms.Counter("wal_batches"), ms.Counter("wal_syncs"), ms.Counter("wal_checkpoints"), ms.Counter("wal_recoveries"))
		if cerr := db.sys.WALCheckpointErr(); cerr != nil {
			out += fmt.Sprintf("; CHECKPOINT FAILING: %v", cerr)
		}
	}
	return out
}
